// Numerics sentinel: guard-mode overhead and the dynamic loss-scaling
// payoff.
//
// Guarded execution sweeps every retiring output for NaN/Inf/denormal/
// bf16-overflow and checksums buffers between producer and consumer.  On
// hardware that detection rides the writeback path; the simulator charges
// it as a nested kGuard span per node.  This bench quantifies the charge at
// paper scale (it must stay under 15% of simulated time, and exactly zero
// when the guard is off) and then demonstrates the robustness half of the
// story: a bf16 training run whose gradient is corrupted mid-run diverges
// to NaN without dynamic loss scaling and finishes finite with it.
#include <cstdio>

#include "bench_common.hpp"
#include "core/table.hpp"
#include "nn/train.hpp"
#include "sim/fault.hpp"

int main() {
  using namespace gaudi;

  // -------------------------------------------------------------------
  // 1. Timing-mode overhead at paper scale (GPT-2 training step).
  // -------------------------------------------------------------------
  nn::LmConfig cfg = nn::LmConfig::gpt2_paper();
  cfg.n_layers = 4;  // one truncated stack is representative; layers repeat
  graph::Graph g;
  (void)nn::build_language_model(g, cfg);

  graph::Runtime rt(sim::ChipConfig::hls1());
  const graph::CompiledGraph compiled = rt.compile(g);

  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.guard = sim::NumericsPolicy::kOff;
  const graph::ProfileResult off1 = rt.run(compiled, {}, opts);
  const graph::ProfileResult off2 = rt.run(compiled, {}, opts);
  opts.guard = sim::NumericsPolicy::kWarn;
  const graph::ProfileResult on = rt.run(compiled, {}, opts);

  const double base_s = off1.makespan.seconds();
  const double guarded_s = on.makespan.seconds();
  const double overhead = (guarded_s - base_s) / base_s;
  std::printf("guard overhead, %s x%lld layers (timing mode):\n",
              nn::lm_arch_name(cfg.arch),
              static_cast<long long>(cfg.n_layers));
  std::printf("  guard off : %s\n", sim::to_string(off1.makespan).c_str());
  std::printf("  guard warn: %s  (swept %llu elements)\n",
              sim::to_string(on.makespan).c_str(),
              static_cast<unsigned long long>(on.numerics.count));
  std::printf("  overhead  : %s%%\n",
              core::TextTable::num(overhead * 100.0, 2).c_str());

  GAUDI_CHECK(overhead < 0.15, "guard overhead exceeds 15% of simulated time");
  GAUDI_CHECK(overhead > 0.0, "guarded run charged no sweep time");
  // Off means off: repeated unguarded runs are byte-identical, no residue.
  GAUDI_CHECK(off1.makespan == off2.makespan &&
                  off1.trace.to_chrome_json() == off2.trace.to_chrome_json(),
              "guard-off runs must be byte-identical");
  std::printf("  guard off is byte-identical across runs (zero overhead)\n\n");

  // -------------------------------------------------------------------
  // 2. bf16 training with a corrupted gradient: GradScaler vs nothing.
  // -------------------------------------------------------------------
  nn::TrainOptions topts;
  topts.steps = 4;
  topts.corrupt_grad_step = 1;  // quiet-NaN one gradient element at step 1

  topts.loss_scaling = false;
  const nn::TrainResult unprotected = nn::train_language_model(topts);
  topts.loss_scaling = true;
  const nn::TrainResult scaled = nn::train_language_model(topts);

  std::printf("bf16 training, gradient corrupted at step %d (%d steps):\n",
              topts.corrupt_grad_step, topts.steps);
  std::printf("  without loss scaling: final loss %s (%s)\n",
              core::TextTable::num(unprotected.final_loss, 4).c_str(),
              unprotected.finite ? "finite" : "NOT finite");
  std::printf("  with GradScaler     : final loss %s (%s), "
              "%lld skipped steps, final scale %s\n",
              core::TextTable::num(scaled.final_loss, 4).c_str(),
              scaled.finite ? "finite" : "NOT finite",
              static_cast<long long>(scaled.skipped_steps),
              core::TextTable::num(scaled.final_scale, 0).c_str());

  GAUDI_CHECK(!unprotected.finite,
              "unprotected run should diverge from the corrupted gradient");
  GAUDI_CHECK(scaled.finite && scaled.skipped_steps == 1,
              "GradScaler should skip exactly the corrupted step");

  // -------------------------------------------------------------------
  // 3. Guarded run under seeded HBM bit flips: every hit is caught.
  // -------------------------------------------------------------------
  sim::FaultProfile profile;
  profile.sdc_bit_flip_rate = 0.02;
  const sim::FaultInjector faults{0xFA517, profile};
  nn::TrainOptions sdc_opts;
  sdc_opts.steps = 4;
  sdc_opts.run.faults = &faults;
  sdc_opts.run.guard = sim::NumericsPolicy::kWarn;
  const nn::TrainResult sdc = nn::train_language_model(sdc_opts);

  std::printf("\nguarded training under HBM bit flips (rate 0.02/node):\n");
  std::printf("  %zu flips injected, %zu anomalies reported, final loss %s "
              "(%s)\n",
              sdc.sdc_injections, sdc.anomalies,
              core::TextTable::num(sdc.final_loss, 4).c_str(),
              sdc.finite ? "finite" : "NOT finite");
  GAUDI_CHECK(sdc.sdc_injections > 0, "fault schedule should have fired");
  GAUDI_CHECK(sdc.anomalies > 0, "guard should have caught the flips");
  return 0;
}

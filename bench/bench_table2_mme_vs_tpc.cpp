// Table 2 reproduction: execution time and TFLOPS of batched matrix
// multiplication (batch 64) on the MME vs a custom TPC kernel, for square
// sizes 128..2048.  Expected shape (paper): MME ramps ~2.3 -> ~14.6 TFLOPS
// saturating near 512; TPC stays ~1.9-2.2 TFLOPS; speedup ~1.3 -> ~6.7.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  const auto rows = core::run_mme_vs_tpc(cfg, {128, 256, 512, 1024, 2048});

  std::puts("Table 2: MME vs TPC batched matmul (batch=64, f32)");
  std::puts("(simulated per-op time; the paper's Time columns embed an");
  std::puts(" unreported iteration count — TFLOPS/speedup are the comparable");
  std::puts(" columns, see EXPERIMENTS.md)");
  std::fputs(core::format_mme_vs_tpc(rows).c_str(), stdout);
  return 0;
}

// bf16 vs f32 GEMM on the MME — the precision axis the paper's platform is
// built around (Gaudi trains natively in bf16).  Extends Table 2 with the
// bf16 column: the array streams bf16 at twice the f32 rate, so the
// MME-over-TPC advantage grows accordingly.
#include <cstdio>

#include "core/table.hpp"
#include "mme/mme.hpp"
#include "sim/chip_config.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  const mme::MmeEngine engine(cfg.mme);

  core::TextTable table({"Size", "F32 (ms)", "F32 TFLOPS", "BF16 (ms)",
                         "BF16 TFLOPS", "BF16 speedup"});
  for (const std::int64_t s : {128, 256, 512, 1024, 2048, 4096}) {
    mme::GemmShape f32{64, s, s, s, tensor::DType::F32};
    mme::GemmShape b16 = f32;
    b16.dtype = tensor::DType::BF16;
    const auto r32 = engine.cost(f32);
    const auto r16 = engine.cost(b16);
    table.add_row({std::to_string(s), core::TextTable::num(r32.duration.ms()),
                   core::TextTable::num(r32.tflops()),
                   core::TextTable::num(r16.duration.ms()),
                   core::TextTable::num(r16.tflops()),
                   core::TextTable::num(r32.duration.seconds() /
                                        r16.duration.seconds(), 2) + "x"});
  }
  std::puts("MME batched GEMM (batch 64): f32 vs bf16");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("(launch overhead is precision-independent, so small sizes gain");
  std::puts(" less than the asymptotic 2x)");
  return 0;
}

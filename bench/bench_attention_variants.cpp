// Extended attention-mechanism comparison at the paper's layer scale:
// besides the three mechanisms the paper profiles (softmax, Linear
// Transformer, Performer), this covers the two efficient-attention families
// its introduction cites — low-rank (Linformer) and sparse (block-local) —
// answering the natural follow-up: how would those have fared on Gaudi?
#include <cstdio>

#include "core/experiments.hpp"
#include "core/table.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  struct Case {
    const char* name;
    nn::AttentionKind kind;
  };
  const Case cases[] = {
      {"softmax (Vaswani)", nn::AttentionKind::kSoftmax},
      {"linear (Katharopoulos)", nn::AttentionKind::kLinear},
      {"performer (Choromanski)", nn::AttentionKind::kPerformer},
      {"linformer k=256 (Wang)", nn::AttentionKind::kLinformer},
      {"local w=256 (Child)", nn::AttentionKind::kLocal},
  };

  core::TextTable table({"Mechanism", "Total (ms)", "MME busy (ms)",
                         "TPC busy (ms)", "MME idle", "vs softmax"});
  double softmax_s = 0.0;
  for (const Case& c : cases) {
    core::LayerExperiment exp;
    exp.attention.kind = c.kind;
    const auto profile = core::run_layer_profile(exp, cfg);
    const auto& s = profile.summary;
    if (c.kind == nn::AttentionKind::kSoftmax) softmax_s = s.makespan.seconds();
    table.add_row(
        {c.name, core::TextTable::num(s.makespan.ms()),
         core::TextTable::num(s.mme_busy.ms()), core::TextTable::num(s.tpc_busy.ms()),
         core::TextTable::num(s.mme_idle_fraction * 100.0, 0) + "%",
         core::TextTable::num(softmax_s / s.makespan.seconds(), 1) + "x"});
  }
  std::puts("Attention mechanisms, paper layer config (seq 2048, batch 128,");
  std::puts("6 heads x 64):");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nEvery mechanism that replaces the O(N^2) TPC softmax with");
  std::puts("matmul-dominated structure recovers MME utilization — the");
  std::puts("paper's insight #3 generalized across the efficient-attention");
  std::puts("families its introduction surveys.");
  return 0;
}

// Figure 5 reproduction: Linear Transformer (phi(x) = elu(x) + 1) at the
// same scale as Fig 4.
//
// Paper claims to reproduce: total ~30 ms, ~6x faster than softmax
// attention, and "not many blank areas in the MME operating area".
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  core::LayerExperiment softmax_exp;
  softmax_exp.attention.kind = nn::AttentionKind::kSoftmax;
  const core::LayerProfile softmax_profile =
      core::run_layer_profile(softmax_exp, cfg);

  core::LayerExperiment linear_exp;
  linear_exp.attention.kind = nn::AttentionKind::kLinear;
  linear_exp.attention.feature_map = nn::Activation::kElu;
  const core::LayerProfile profile = core::run_layer_profile(linear_exp, cfg);

  bench::print_profile("Fig 5: Transformer layer, linear attention (elu+1)",
                       profile.summary, profile.trace,
                       "fig5_linear_transformer.trace.json");
  std::printf("speedup vs softmax attention: %.1fx (paper: ~6x)\n",
              softmax_profile.summary.makespan.seconds() /
                  profile.summary.makespan.seconds());
  return 0;
}

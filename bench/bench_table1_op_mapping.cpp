// Table 1 reproduction: operation -> compute-engine mapping via the graph
// compiler.  Expected: only torch.matmul maps to the MME; every other
// operation — including linear ones like scalar * tensor — maps to the TPC.
#include <cstdio>

#include "core/experiments.hpp"

int main() {
  using namespace gaudi;
  const auto rows = core::run_op_mapping_probe();
  std::puts("Table 1: Operation-Hardware Mapping via the graph compiler");
  std::fputs(core::format_op_mapping(rows).c_str(), stdout);

  int mme = 0;
  for (const auto& r : rows) mme += r.engine == graph::Engine::kMme ? 1 : 0;
  std::printf("\n%d of %zu probed operations map to the MME "
              "(paper: only matrix multiplication does)\n",
              mme, rows.size());
  return 0;
}

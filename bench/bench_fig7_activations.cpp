// Figure 7 reproduction: feature-map activation sweep on the linear-attention
// Transformer layer (ReLU / LeakyReLU / GELU / GLU).
//
// Paper claims to reproduce: ReLU, LeakyReLU and GELU perform alike (30.1 /
// 30.2 / 29.7 ms); GLU is the worst (32.6 ms) and produces a blank area in
// the MME row, attributed to missing first-class support forcing extra
// compilation.
#include <cstdio>

#include "bench_common.hpp"
#include "core/table.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  struct Case {
    nn::Activation act;
    const char* label;
  };
  const Case cases[] = {
      {nn::Activation::kRelu, "ReLU"},
      {nn::Activation::kLeakyRelu, "LeakyReLU"},
      {nn::Activation::kGelu, "GELU"},
      {nn::Activation::kGlu, "GLU"},
  };

  core::TextTable table({"Activation", "Total (ms)", "MME idle", "Compile stall",
                         "Longest MME gap (ms)"});
  for (const Case& c : cases) {
    core::LayerExperiment exp;
    exp.attention.kind = nn::AttentionKind::kLinear;
    exp.attention.feature_map = c.act;
    const auto profile = core::run_layer_profile(exp, cfg);
    const auto& s = profile.summary;
    table.add_row({c.label, core::TextTable::num(s.makespan.ms(), 2),
                   core::TextTable::num(s.mme_idle_fraction * 100.0, 0) + "%",
                   sim::to_string(s.host_busy),
                   core::TextTable::num(s.mme_longest_gap.ms(), 2)});
    if (c.act == nn::Activation::kGlu) {
      bench::print_profile("Fig 7 detail: GLU feature map", s, profile.trace,
                           "fig7_glu.trace.json");
    }
  }

  std::puts("Fig 7: activation functions in the linear-attention layer");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("(paper: ReLU 30.1, LeakyReLU 30.2, GELU 29.7, GLU 32.6 ms — GLU");
  std::puts(" worst, with an MME blank area caused by extra compilation)");
  return 0;
}

// Training-step cost across attention mechanisms — the paper profiles
// *training* (Figs 8-9) but only with softmax attention; this bench answers
// its natural conclusion: what does a full forward+backward step cost once
// the attention is linearized?  (Backward gradients flow through every
// mechanism, including the batch-reduced projection gradients of
// Linformer.)
#include <cstdio>

#include "core/analysis.hpp"
#include "core/table.hpp"
#include "graph/runtime.hpp"
#include "nn/models.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  struct Case {
    const char* name;
    nn::AttentionKind kind;
  };
  const Case cases[] = {
      {"softmax", nn::AttentionKind::kSoftmax},
      {"linear (elu)", nn::AttentionKind::kLinear},
      {"linformer k=256", nn::AttentionKind::kLinformer},
      {"local w=256", nn::AttentionKind::kLocal},
  };

  core::TextTable table({"Attention", "Step (ms)", "MME busy (ms)",
                         "TPC busy (ms)", "Peak HBM (GB)", "vs softmax"});
  double softmax_s = 0.0;
  for (const Case& c : cases) {
    graph::Graph g;
    nn::LmConfig model_cfg = nn::LmConfig::gpt2_paper();
    model_cfg.attention.kind = c.kind;
    if (c.kind != nn::AttentionKind::kSoftmax) {
      // Efficient mechanisms here are bidirectional (no causal mask), like
      // the paper's linear-attention layer experiments.
      model_cfg.arch = nn::LmArch::kBert;
      model_cfg.vocab = 50257;  // keep the LM head comparable
    }
    (void)nn::build_language_model(g, model_cfg);

    graph::Runtime rt(cfg);
    graph::RunOptions opts;
    opts.mode = tpc::ExecMode::kTiming;
    const auto result = rt.run(g, {}, opts);
    const auto s = core::summarize(result.trace);
    if (c.kind == nn::AttentionKind::kSoftmax) softmax_s = s.makespan.seconds();
    table.add_row(
        {c.name, core::TextTable::num(s.makespan.ms()),
         core::TextTable::num(s.mme_busy.ms()), core::TextTable::num(s.tpc_busy.ms()),
         core::TextTable::num(static_cast<double>(result.hbm_peak_bytes) / (1 << 30),
                              2),
         core::TextTable::num(softmax_s / s.makespan.seconds(), 2) + "x"});
  }

  std::puts("Full training step (fwd + loss + bwd), paper model scale");
  std::puts("(seq 2048, batch 8, 2 layers, 8 heads x 64, vocab 50257):");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nAt this scale the LM-head GEMMs dominate, so attention");
  std::puts("linearization buys less end-to-end than in the layer profiles");
  std::puts("— context the paper's single-layer figures do not show.");
  return 0;
}

// Sequence-length ablation (paper §3.3 motivation: long-sequence training):
// total layer time for softmax vs linear vs Performer attention as the
// sequence grows.  The paper argues softmax attention's O(N^2) softmax on
// the TPC makes long sequences disproportionately expensive — the crossover
// and the widening gap are the quantitative form of that claim.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/table.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  core::TextTable table({"Seq len", "softmax (ms)", "linear (ms)",
                         "performer (ms)", "softmax/linear"});

  for (const std::int64_t seq : {256, 512, 1024, 2048, 4096}) {
    std::string cell[3];
    double ms[3] = {0, 0, 0};
    int i = 0;
    for (const auto kind : {nn::AttentionKind::kSoftmax, nn::AttentionKind::kLinear,
                            nn::AttentionKind::kPerformer}) {
      core::LayerExperiment exp;
      exp.seq_len = seq;
      // Keep tokens per batch constant so total work is comparable.
      exp.batch = 128 * 2048 / seq;
      exp.attention.kind = kind;
      try {
        ms[i] = core::run_layer_profile(exp, cfg).summary.makespan.ms();
        cell[i] = core::TextTable::num(ms[i]);
      } catch (const sim::ResourceExhausted&) {
        // The O(N^2) attention matrix no longer fits the 32 GB HBM — the
        // hard form of the paper's long-sequence motivation.
        cell[i] = "OOM";
      }
      ++i;
    }
    table.add_row({std::to_string(seq), cell[0], cell[1], cell[2],
                   ms[1] > 0 && ms[0] > 0
                       ? core::TextTable::num(ms[0] / ms[1], 1) + "x"
                       : "-"});
  }

  std::puts("Ablation: attention mechanism vs sequence length");
  std::puts("(constant token count; paper §3.3: long sequences exacerbate");
  std::puts(" the softmax-on-TPC bottleneck)");
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}

// Autoregressive decode latency — the inference regime the trained models
// of Figs 8-9 get deployed into.  Each generated token runs batch-1-row
// GEMMs (the MME packing floor) plus a cache-append and a softmax over the
// growing context: a very different engine balance from training, and a
// preview of why inference-oriented accelerators chase exactly this case.
//
// The bench also exercises the compile/execute split the way a serving
// loop would: each context length's step graph goes through the compiler
// pipeline exactly once (DecodeStepCache), then the per-token loop replays
// the immutable artifact — no per-token mapping, fusion, or memory
// planning.
#include <chrono>
#include <cstdio>

#include "core/analysis.hpp"
#include "core/table.hpp"
#include "graph/runtime.hpp"
#include "nn/decode.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  constexpr int kTokensPerCtx = 8;

  nn::DecodeConfig model = nn::DecodeConfig::gpt2_paper();
  model.batch = 8;

  const graph::Runtime rt(cfg);
  nn::DecodeStepCache cache(rt, model);

  core::TextTable table({"Context", "Step latency", "Tokens/s", "MME busy",
                         "TPC busy", "TPC share", "Compile", "Run/tok"});
  for (const std::int64_t ctx : {256, 512, 1024, 2048, 4096}) {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const nn::DecodeStepCache::Entry& entry = cache.step(ctx);
    const auto t1 = clock::now();

    graph::RunOptions opts;
    opts.mode = tpc::ExecMode::kTiming;
    // Run many tokens through the one compiled artifact, as a generation
    // loop would (the simulated step is shape-deterministic, so every run
    // reports the same trace; wall-clock per token is what varies).
    graph::ProfileResult result;
    for (int tok = 0; tok < kTokensPerCtx; ++tok) {
      result = rt.run(entry.compiled, {}, opts);
    }
    const auto t2 = clock::now();
    const double compile_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double run_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count() /
        kTokensPerCtx;

    const auto s = core::summarize(result.trace);
    const double tpc_share =
        s.tpc_busy.seconds() / (s.tpc_busy.seconds() + s.mme_busy.seconds());
    table.add_row(
        {std::to_string(ctx), sim::to_string(s.makespan),
         core::TextTable::num(static_cast<double>(model.batch) /
                                  s.makespan.seconds(), 0),
         sim::to_string(s.mme_busy), sim::to_string(s.tpc_busy),
         core::TextTable::num(tpc_share * 100.0, 0) + "%",
         core::TextTable::num(compile_ms, 1) + " ms",
         core::TextTable::num(run_ms, 1) + " ms"});
  }

  std::puts("GPT decode step (batch 8, 2 layers, 8 heads x 64, vocab 50257):");
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\n%zu step graphs compiled for %d tokens each; the per-token\n",
              cache.compiled_steps(), kTokensPerCtx);
  std::puts("loop replays the compiled artifact without re-running any pass.");
  std::puts("\nTraining (Fig 8) runs the MME at 72% utilization; decode");
  std::puts("inverts the balance — single-row GEMMs bottom out at the MME's");
  std::puts("packing floor while cache reads and softmax keep the TPC busy.");
  return 0;
}

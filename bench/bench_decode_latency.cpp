// Autoregressive decode latency — the inference regime the trained models
// of Figs 8-9 get deployed into.  Each generated token runs batch-1-row
// GEMMs (the MME packing floor) plus a cache-append and a softmax over the
// growing context: a very different engine balance from training, and a
// preview of why inference-oriented accelerators chase exactly this case.
#include <cstdio>

#include "core/analysis.hpp"
#include "core/table.hpp"
#include "graph/runtime.hpp"
#include "nn/decode.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  nn::DecodeConfig model = nn::DecodeConfig::gpt2_paper();
  model.batch = 8;

  core::TextTable table({"Context", "Step latency", "Tokens/s", "MME busy",
                         "TPC busy", "TPC share"});
  for (const std::int64_t ctx : {256, 512, 1024, 2048, 4096}) {
    graph::Graph g;
    const nn::DecodeStepGraph step = nn::build_gpt_decode_step(g, model, ctx);
    (void)step;
    graph::Runtime rt(cfg);
    graph::RunOptions opts;
    opts.mode = tpc::ExecMode::kTiming;
    const auto result = rt.run(g, {}, opts);
    const auto s = core::summarize(result.trace);
    const double tpc_share =
        s.tpc_busy.seconds() / (s.tpc_busy.seconds() + s.mme_busy.seconds());
    table.add_row(
        {std::to_string(ctx), sim::to_string(s.makespan),
         core::TextTable::num(static_cast<double>(model.batch) /
                                  s.makespan.seconds(), 0),
         sim::to_string(s.mme_busy), sim::to_string(s.tpc_busy),
         core::TextTable::num(tpc_share * 100.0, 0) + "%"});
  }

  std::puts("GPT decode step (batch 8, 2 layers, 8 heads x 64, vocab 50257):");
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nTraining (Fig 8) runs the MME at 72% utilization; decode");
  std::puts("inverts the balance — single-row GEMMs bottom out at the MME's");
  std::puts("packing floor while cache reads and softmax keep the TPC busy.");
  return 0;
}

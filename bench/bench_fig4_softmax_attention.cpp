// Figure 4 reproduction: hardware trace of a Transformer layer with softmax
// attention (seq 2048, batch 128, heads 6, head size 64).
//
// Paper claims to reproduce: (1) many blank areas in the MME row — MME idles
// while softmax runs on the TPC; (2) softmax exceeds 80% of TPC busy time.
#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  core::LayerExperiment exp;  // paper defaults: 2048 / 128 / 6 / 64
  exp.attention.kind = nn::AttentionKind::kSoftmax;
  const core::LayerProfile profile = core::run_layer_profile(exp, cfg);

  bench::print_profile("Fig 4: Transformer layer, softmax attention",
                       profile.summary, profile.trace,
                       "fig4_softmax_attention.trace.json");
  std::printf("peak HBM: %.2f GB of 32 GB\n",
              static_cast<double>(profile.hbm_peak_bytes) / (1024.0 * 1024 * 1024));
  return 0;
}

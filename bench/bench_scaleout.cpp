// Scale-out projection: data-parallel GPT/BERT training across the HLS-1's
// eight Gaudi processors (paper §3.1 describes the box; all measurements in
// the paper use one chip — this bench extends the model to the full system
// the hardware was built for, per the Medina & Dagan reference).
#include <cstdio>

#include "core/experiments.hpp"
#include "core/table.hpp"
#include "scaleout/data_parallel.hpp"
#include "scaleout/pipeline.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  for (const auto arch : {nn::LmArch::kGpt2, nn::LmArch::kBert}) {
    const nn::LmConfig model_cfg = arch == nn::LmArch::kGpt2
                                       ? nn::LmConfig::gpt2_paper()
                                       : nn::LmConfig::bert_paper();
    const core::LlmProfile profile =
        core::run_llm_profile(model_cfg, graph::SchedulePolicy::kBarrier, cfg);
    const std::size_t grad_bytes = profile.param_count * 4;

    std::printf("%s: single-chip step %s, %.1f MB of gradients\n",
                nn::lm_arch_name(arch),
                sim::to_string(profile.summary.makespan).c_str(),
                static_cast<double>(grad_bytes) / (1 << 20));

    core::TextTable table({"Chips", "Step (ms)", "Tokens/s", "Efficiency",
                           "Step w/ overlap", "Efficiency w/ overlap"});
    for (const std::uint32_t chips : {1u, 2u, 4u, 8u}) {
      scaleout::DataParallelConfig dp;
      dp.chips = chips;
      const auto plain = scaleout::data_parallel_step(
          dp, profile.summary.makespan, grad_bytes, model_cfg.tokens());
      dp.overlap_comm = true;
      const auto overlapped = scaleout::data_parallel_step(
          dp, profile.summary.makespan, grad_bytes, model_cfg.tokens());
      table.add_row(
          {std::to_string(chips), core::TextTable::num(plain.total.ms()),
           core::TextTable::num(plain.tokens_per_second, 0),
           core::TextTable::num(plain.scaling_efficiency * 100.0, 1) + "%",
           core::TextTable::num(overlapped.total.ms()),
           core::TextTable::num(overlapped.scaling_efficiency * 100.0, 1) + "%"});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("");
  }
  std::puts("(ring all-reduce over the in-box RoCE links; overlap hides");
  std::puts(" bucketed gradient sync behind the backward pass)\n");

  // Pipeline parallelism: GPT split across stages, varying microbatches.
  {
    const nn::LmConfig model_cfg = nn::LmConfig::gpt2_paper();
    const core::LlmProfile profile =
        core::run_llm_profile(model_cfg, graph::SchedulePolicy::kBarrier, cfg);
    // Per-boundary activations: one microbatch's hidden state.
    const std::size_t act_bytes = static_cast<std::size_t>(
        model_cfg.tokens() * model_cfg.d_model() * 4);
    std::puts("gpt2 pipeline-parallel (8 stages, GPipe schedule):");
    core::TextTable table({"Microbatches", "Step (ms)", "Bubble", "Tokens/s",
                           "Speedup vs 1 chip"});
    for (const std::uint32_t m : {1u, 2u, 4u, 8u, 32u}) {
      scaleout::PipelineConfig pp;
      pp.stages = 8;
      pp.microbatches = m;
      const auto step = scaleout::pipeline_step(pp, profile.summary.makespan,
                                                act_bytes, model_cfg.tokens());
      table.add_row({std::to_string(m), core::TextTable::num(step.total.ms()),
                     core::TextTable::num(step.bubble_fraction * 100.0, 1) + "%",
                     core::TextTable::num(step.tokens_per_second, 0),
                     core::TextTable::num(step.speedup_vs_single_chip, 2) + "x"});
    }
    std::fputs(table.to_string().c_str(), stdout);
  }
  return 0;
}

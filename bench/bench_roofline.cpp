// Roofline decomposition of the paper's key profiles: which ops are
// memory-bound vs compute-bound, and how far below their roof they run.
// The "in-depth" companion to Figures 4 and 8: softmax and the other TPC
// ops sit deep in the memory-bound region; the attention and LM-head GEMMs
// ride the MME compute roof.
#include <cstdio>

#include "core/experiments.hpp"
#include "core/roofline.hpp"

int main() {
  using namespace gaudi;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  std::printf("machine balance: MME %.1f FLOP/B, TPC %.1f FLOP/B (HBM %.0f GB/s)\n\n",
              core::machine_balance(cfg, graph::Engine::kMme),
              core::machine_balance(cfg, graph::Engine::kTpc),
              cfg.memory.hbm_bandwidth_bytes_per_s * 1e-9);

  {
    core::LayerExperiment exp;  // Fig 4 config
    exp.attention.kind = nn::AttentionKind::kSoftmax;
    const auto profile = core::run_layer_profile(exp, cfg);
    std::puts("Transformer layer, softmax attention (Fig 4):");
    std::fputs(core::format_roofline(core::roofline(profile.trace, cfg), 10).c_str(),
               stdout);
    std::puts("");
  }
  {
    const auto profile = core::run_llm_profile(
        nn::LmConfig::gpt2_paper(), graph::SchedulePolicy::kBarrier, cfg);
    std::puts("GPT training step (Fig 8), heaviest ops:");
    std::fputs(core::format_roofline(core::roofline(profile.trace, cfg), 12).c_str(),
               stdout);
  }
  return 0;
}

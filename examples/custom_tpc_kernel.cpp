// Writing a custom TPC kernel — the workflow Habana's TPC SDK supports and
// the paper's Table 2 exercises (its TPC matmul comes from the
// Habana_Custom_Kernel examples).  We implement a fused "swish-residual"
// kernel (out = x + y * sigmoid(y)), run it functionally, check it against a
// composed-op reference, and compare instruction-level costs.
//
//   $ ./custom_tpc_kernel
#include <cstdio>

#include "sim/chip_config.hpp"
#include "tensor/ops.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"

namespace {

using namespace gaudi;

/// out[i] = x[i] + y[i] * sigmoid(y[i]) in one pass over global memory.
///
/// A kernel implements: a name, an index space (units of independent work),
/// a local-memory budget, and a per-member instruction stream expressed
/// through KernelContext intrinsics — each intrinsic is charged to its VLIW
/// slot, so the cycle count below *is* the performance model.
class SwishResidualKernel final : public tpc::Kernel {
 public:
  SwishResidualKernel(tensor::Tensor x, tensor::Tensor y, tensor::Tensor out)
      : x_(std::move(x)), y_(std::move(y)), out_(std::move(out)) {
    GAUDI_CHECK(x_.numel() == y_.numel() && x_.numel() == out_.numel(),
                "element counts must match");
  }

  [[nodiscard]] std::string name() const override { return "custom.swish_residual"; }

  [[nodiscard]] tpc::IndexSpace index_space() const override {
    // One member per 8 vectors (512 f32 elements), like the library kernels.
    return tpc::IndexSpace{{(x_.numel() + 511) / 512}};
  }

  void execute(tpc::KernelContext& ctx, const tpc::Member& m) const override {
    const auto x = tpc::ro(x_);
    const auto y = tpc::ro(y_);
    auto out = tpc::rw(out_);
    const std::int64_t begin = m.linear * 512;
    const std::int64_t end = std::min<std::int64_t>(x_.numel(), begin + 512);
    for (std::int64_t off = begin; off < end; off += tpc::kLanes) {
      const int count =
          static_cast<int>(std::min<std::int64_t>(tpc::kLanes, end - off));
      const tpc::VecF vx = ctx.v_ld_g(x, off, count);
      const tpc::VecF vy = ctx.v_ld_g(y, off, count);
      const tpc::VecF sw = ctx.v_mul(vy, ctx.v_sigmoid(vy));
      ctx.v_st_g(out, off, ctx.v_add(vx, sw), count);
    }
  }

  [[nodiscard]] std::uint64_t flop_count() const override {
    return static_cast<std::uint64_t>(x_.numel()) * 3;
  }

 private:
  tensor::Tensor x_, y_, out_;
};

}  // namespace

int main() {
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  const tpc::TpcCluster cluster(cfg.tpc);
  const std::int64_t n = 1 << 20;

  const sim::CounterRng rng(7);
  const tensor::Tensor x =
      tensor::Tensor::uniform(tensor::Shape{{n}}, rng.stream(1), -2.0f, 2.0f);
  const tensor::Tensor y =
      tensor::Tensor::uniform(tensor::Shape{{n}}, rng.stream(2), -2.0f, 2.0f);
  tensor::Tensor out = tensor::Tensor::zeros(tensor::Shape{{n}});

  // Functional run: real numerics + exact cycle accounting.
  const tpc::RunResult fused =
      cluster.run(SwishResidualKernel(x, y, out), tpc::ExecMode::kFunctional);

  // Verify against the composed reference.
  namespace ops = tensor::ops;
  const tensor::Tensor expect = ops::add(x, ops::mul(y, ops::sigmoid(y)));
  std::printf("max |fused - composed| = %.2e\n", ops::max_abs_diff(out, expect));

  // Compare with running the same math as three separate library kernels
  // (what the graph compiler would do without fusion).
  tensor::Tensor t1 = tensor::Tensor::zeros(tensor::Shape{{n}});
  tensor::Tensor t2 = tensor::Tensor::zeros(tensor::Shape{{n}});
  tensor::Tensor t3 = tensor::Tensor::zeros(tensor::Shape{{n}});
  sim::SimTime composed{};
  composed += cluster
                  .run(tpc::UnaryEwKernel(tpc::UnaryKind::kSigmoid, y, t1),
                       tpc::ExecMode::kFunctional)
                  .duration;
  composed += cluster
                  .run(tpc::BinaryEwKernel(tpc::BinaryKind::kMul, y, t1, t2),
                       tpc::ExecMode::kFunctional)
                  .duration;
  composed += cluster
                  .run(tpc::BinaryEwKernel(tpc::BinaryKind::kAdd, x, t2, t3),
                       tpc::ExecMode::kFunctional)
                  .duration;

  std::printf("fused kernel   : %s (%.0f GB/s effective)\n",
              sim::to_string(fused.duration).c_str(),
              3.0 * n * 4 / fused.duration.seconds() * 1e-9);
  std::printf("three kernels  : %s\n", sim::to_string(composed).c_str());
  std::printf("fusion speedup : %.2fx (fewer global-memory passes and\n",
              composed.seconds() / fused.duration.seconds());
  std::puts("                 launch overheads — why kernel-level fusion");
  std::puts("                 matters on TPC-class SIMD machines)");

  // Slot-level view: where the cycles went.
  std::printf("issued cycles  : load=%llu  vpu=%llu  store=%llu  spu=%llu\n",
              static_cast<unsigned long long>(fused.slot_totals.load),
              static_cast<unsigned long long>(fused.slot_totals.vpu),
              static_cast<unsigned long long>(fused.slot_totals.store),
              static_cast<unsigned long long>(fused.slot_totals.spu));
  return 0;
}

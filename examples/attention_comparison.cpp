// Attention-mechanism shoot-out: softmax vs Linear-Transformer vs Performer
// attention on the paper's Transformer-layer configuration, swept over
// sequence length — the practical decision the paper's §3.3 informs.
//
//   $ ./attention_comparison [max_seq]
#include <cstdio>
#include <cstdlib>

#include "core/experiments.hpp"
#include "core/table.hpp"

int main(int argc, char** argv) {
  using namespace gaudi;
  const std::int64_t max_seq = argc > 1 ? std::atoll(argv[1]) : 2048;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  std::puts("Transformer layer (batch x seq = 262144 tokens, 6 heads x 64):");
  core::TextTable table({"Seq", "softmax", "linear(elu)", "performer",
                         "best mechanism"});
  for (std::int64_t seq = 256; seq <= max_seq; seq *= 2) {
    double ms[3];
    const char* names[3] = {"softmax", "linear", "performer"};
    int i = 0;
    for (const auto kind : {nn::AttentionKind::kSoftmax, nn::AttentionKind::kLinear,
                            nn::AttentionKind::kPerformer}) {
      core::LayerExperiment exp;
      exp.seq_len = seq;
      exp.batch = 128 * 2048 / seq;
      exp.attention.kind = kind;
      try {
        ms[i] = core::run_layer_profile(exp, cfg).summary.makespan.ms();
      } catch (const sim::ResourceExhausted&) {
        ms[i] = -1.0;  // does not fit HBM
      }
      ++i;
    }
    int best = 0;
    for (int j = 1; j < 3; ++j) {
      if (ms[j] > 0 && (ms[best] < 0 || ms[j] < ms[best])) best = j;
    }
    auto cell = [&](int j) {
      return ms[j] < 0 ? std::string("OOM")
                       : core::TextTable::num(ms[j]) + " ms";
    };
    table.add_row({std::to_string(seq), cell(0), cell(1), cell(2), names[best]});
  }
  std::fputs(table.to_string().c_str(), stdout);

  std::puts("\nWhy: softmax lives on the TPC (reduction-heavy, ~2.2 TFLOPS);");
  std::puts("linearized attention converts the same math into MME matmuls");
  std::puts("(~14.6 TFLOPS peak) — the paper's central observation.");
  return 0;
}

// End-to-end LLM training-step profiling — the paper's §3.4 workflow as a
// library consumer would run it: pick a model, feed synthetic BookCorpus,
// profile a full training step at paper scale (timing mode), export a
// Chrome trace, and ask the advisor what to fix.  Then validate the same
// model functionally at miniature scale.
//
//   $ ./llm_training_profile [gpt2|bert]
#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/advisor.hpp"
#include "core/experiments.hpp"
#include "graph/runtime.hpp"
#include "workload/corpus.hpp"

int main(int argc, char** argv) {
  using namespace gaudi;
  const bool bert = argc > 1 && std::strcmp(argv[1], "bert") == 0;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  // --- Paper-scale profile (timing mode: no host memory for 3 G-element
  // tensors; kernels run on sampled index-space members). ------------------
  const nn::LmConfig model_cfg =
      bert ? nn::LmConfig::bert_paper() : nn::LmConfig::gpt2_paper();
  std::printf("profiling %s: seq %lld, batch %lld, %lld layers, %lld heads\n",
              nn::lm_arch_name(model_cfg.arch),
              static_cast<long long>(model_cfg.seq_len),
              static_cast<long long>(model_cfg.batch),
              static_cast<long long>(model_cfg.n_layers),
              static_cast<long long>(model_cfg.heads));

  const core::LlmProfile observed =
      core::run_llm_profile(model_cfg, graph::SchedulePolicy::kBarrier, cfg);
  const core::LlmProfile ideal =
      core::run_llm_profile(model_cfg, graph::SchedulePolicy::kOverlap, cfg);

  std::printf("parameters: %zu, peak HBM %.2f GB\n", observed.param_count,
              static_cast<double>(observed.hbm_peak_bytes) / (1 << 30) / 1.0);
  std::fputs(core::to_report(observed.summary, "training step (observed schedule)")
                 .c_str(),
             stdout);
  std::fputs(observed.trace.ascii_timeline(90).c_str(), stdout);

  const std::string trace_path =
      std::string(nn::lm_arch_name(model_cfg.arch)) + "_training.trace.json";
  observed.trace.write_chrome_json(trace_path);
  std::printf("chrome trace: %s (open in a trace viewer)\n\n", trace_path.c_str());

  core::AdvisorInput advice_in;
  advice_in.summary = observed.summary;
  advice_in.overlap_makespan = ideal.summary.makespan;
  std::fputs(core::format_findings(core::advise(advice_in)).c_str(), stdout);

  // --- Functional sanity at miniature scale: same architecture, real
  // numerics, one SGD step must reduce the loss on a repeated batch. -------
  std::puts("\nfunctional validation (miniature config):");
  graph::Graph g;
  nn::LmConfig tiny = nn::LmConfig::tiny(model_cfg.arch);
  const nn::LanguageModel model = nn::build_language_model(g, tiny);

  auto feeds = model.params.init_feeds(g);
  const workload::SyntheticCorpus corpus({tiny.vocab, 1.1, 2024});
  feeds.emplace(model.token_ids, corpus.batch(tiny.batch, tiny.seq_len));
  feeds.emplace(model.targets,
                corpus.next_token_targets(tiny.batch, tiny.seq_len));
  if (model.causal_mask != graph::kInvalidValue) {
    feeds.emplace(model.causal_mask, nn::make_causal_mask(tiny.seq_len));
  }

  graph::Runtime rt(cfg);
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  double last_loss = 0.0;
  for (int step = 0; step < 3; ++step) {
    const auto result = rt.run(g, feeds, opts);
    last_loss = result.outputs.at(model.loss).at(0);
    std::printf("  step %d: loss %.4f (ln V = %.4f)\n", step, last_loss,
                std::log(static_cast<double>(tiny.vocab)));
    const auto trainable = model.params.trainable();
    for (std::size_t i = 0; i < trainable.size(); ++i) {
      tensor::Tensor& p = feeds.at(trainable[i]);
      const tensor::Tensor& grad = result.outputs.at(model.grad_values[i]);
      for (std::int64_t j = 0; j < p.numel(); ++j) {
        p.f32()[static_cast<std::size_t>(j)] -=
            0.3f * grad.f32()[static_cast<std::size_t>(j)];
      }
    }
  }
  std::puts("  (loss decreasing on a repeated batch: training path works)");
  return 0;
}

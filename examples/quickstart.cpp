// Quickstart: build a small computation graph, run it functionally on the
// simulated Gaudi, and read back both the numerical result and the hardware
// trace — the five-minute tour of the public API.
//
//   $ ./quickstart
#include <cstdio>

#include "core/analysis.hpp"
#include "graph/runtime.hpp"
#include "tensor/ops.hpp"

int main() {
  using namespace gaudi;

  // 1. Describe the computation as a graph (the SynapseAI-style IR).
  //    y = softmax(x @ w + b)
  graph::Graph g;
  const graph::ValueId x = g.input(tensor::Shape{{32, 64}}, tensor::DType::F32, "x");
  const graph::ValueId w = g.param(tensor::Shape{{64, 64}}, "w");
  const graph::ValueId b = g.param(tensor::Shape{{64}}, "b");
  const graph::ValueId y = g.softmax(g.matmul_bias(x, w, b), "softmax");
  g.mark_output(y);

  // 2. Provide input data (deterministic counter-based RNG).
  const sim::CounterRng rng(2024);
  std::unordered_map<graph::ValueId, tensor::Tensor> feeds;
  feeds.emplace(x, tensor::Tensor::uniform(tensor::Shape{{32, 64}}, rng.stream(1),
                                           -1.0f, 1.0f));
  feeds.emplace(w, tensor::Tensor::normal(tensor::Shape{{64, 64}}, rng.stream(2),
                                          0.05f));
  feeds.emplace(b, tensor::Tensor::zeros(tensor::Shape{{64}}));

  // 3. Compile once, run on the HLS-1 chip model.  compile() runs the pass
  //    pipeline (engine mapping, DMA insertion, static memory planning, ...)
  //    and returns an immutable artifact that can be executed any number of
  //    times.  Functional mode computes real numerics AND simulated timing;
  //    the scheduler policy controls MME/TPC overlap.
  graph::Runtime runtime(sim::ChipConfig::hls1());
  const graph::CompiledGraph compiled = runtime.compile(g);
  std::fputs(compiled.stats.to_string().c_str(), stdout);
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  opts.policy = graph::SchedulePolicy::kBarrier;  // what the paper observed
  const graph::ProfileResult result = runtime.run(compiled, feeds, opts);

  // 4. Numerics: softmax rows sum to 1.
  const tensor::Tensor out = result.outputs.at(y);
  double row0 = 0.0;
  for (int j = 0; j < 64; ++j) row0 += out.f32()[static_cast<std::size_t>(j)];
  std::printf("output shape %s, row 0 sums to %.6f\n",
              out.shape().to_string().c_str(), row0);

  // 5. Performance: where did the time go?
  const core::TraceSummary summary = core::summarize(result.trace);
  std::fputs(core::to_report(summary, "quickstart graph").c_str(), stdout);
  std::fputs(result.trace.ascii_timeline(80).c_str(), stdout);

  // 6. The headline of the underlying paper, in one contrast: the matmul ran
  //    on the MME, everything else (bias fused aside) on the TPC.
  for (const auto& e : result.trace.events()) {
    std::printf("  %-22s on %s for %s\n", e.name.c_str(),
                std::string(graph::engine_name(e.engine)).c_str(),
                sim::to_string(e.duration()).c_str());
  }
  return 0;
}

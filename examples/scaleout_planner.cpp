// Scale-out planning: given a model, which parallelism strategy uses the
// HLS-1's eight Gaudi processors best?  Profiles the single-chip training
// step, then projects data-parallel (with and without comm overlap) and
// pipeline-parallel (sweeping microbatches) configurations and recommends
// one — the capacity-planning workflow the simulator enables without
// touching hardware.
//
//   $ ./scaleout_planner [gpt2|bert]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiments.hpp"
#include "core/table.hpp"
#include "scaleout/data_parallel.hpp"
#include "scaleout/pipeline.hpp"
#include "scaleout/tensor_parallel.hpp"

int main(int argc, char** argv) {
  using namespace gaudi;
  const bool bert = argc > 1 && std::strcmp(argv[1], "bert") == 0;
  const sim::ChipConfig cfg = sim::ChipConfig::hls1();

  const nn::LmConfig model_cfg =
      bert ? nn::LmConfig::bert_paper() : nn::LmConfig::gpt2_paper();
  const core::LlmProfile profile =
      core::run_llm_profile(model_cfg, graph::SchedulePolicy::kBarrier, cfg);
  const std::size_t grad_bytes = profile.param_count * 4;
  const std::size_t act_bytes =
      static_cast<std::size_t>(model_cfg.tokens() * model_cfg.d_model() * 4);

  std::printf("%s: single-chip step %s (%zu params, peak HBM %.1f GB)\n\n",
              nn::lm_arch_name(model_cfg.arch),
              sim::to_string(profile.summary.makespan).c_str(),
              profile.param_count,
              static_cast<double>(profile.hbm_peak_bytes) / (1 << 30));

  struct Plan {
    std::string name;
    double tokens_per_s;
  };
  std::vector<Plan> plans;

  // Data-parallel candidates.
  for (const bool overlap : {false, true}) {
    scaleout::DataParallelConfig dp;
    dp.chips = 8;
    dp.overlap_comm = overlap;
    const auto step = scaleout::data_parallel_step(
        dp, profile.summary.makespan, grad_bytes, model_cfg.tokens());
    plans.push_back({std::string("data-parallel x8") +
                         (overlap ? " + bucketed overlap" : ""),
                     step.tokens_per_second});
  }

  // Tensor-parallel candidate (Megatron-style sharding).
  {
    scaleout::TensorParallelConfig tp;
    tp.shards = 8;
    const auto step = scaleout::tensor_parallel_step(
        tp, profile.summary.makespan, model_cfg.n_layers, act_bytes,
        model_cfg.tokens());
    plans.push_back({"tensor-parallel x8 (Megatron)", step.tokens_per_second});
  }

  // Pipeline candidates.
  for (const std::uint32_t m : {8u, 16u, 64u}) {
    scaleout::PipelineConfig pp;
    pp.stages = 8;
    pp.microbatches = m;
    const auto step = scaleout::pipeline_step(pp, profile.summary.makespan,
                                              act_bytes, model_cfg.tokens());
    plans.push_back({"pipeline x8, " + std::to_string(m) + " microbatches",
                     step.tokens_per_second});
  }

  core::TextTable table({"Strategy", "Tokens/s", "vs best"});
  double best = 0.0;
  std::string best_name;
  for (const auto& p : plans) {
    if (p.tokens_per_s > best) {
      best = p.tokens_per_s;
      best_name = p.name;
    }
  }
  for (const auto& p : plans) {
    table.add_row({p.name, core::TextTable::num(p.tokens_per_s, 0),
                   core::TextTable::num(p.tokens_per_s / best * 100.0, 1) + "%"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nrecommendation: %s (%.0f tokens/s)\n", best_name.c_str(), best);
  std::puts("note: data parallelism also multiplies the global batch; pipeline");
  std::puts("parallelism keeps it fixed but divides per-chip memory — at these");
  std::puts("model sizes (well under 32 GB) data parallelism wins.");
  return 0;
}

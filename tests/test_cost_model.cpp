// Cost-model contract tests: exact cycle accounting for representative
// kernels.  These pin the performance model itself — if an intrinsic cost
// or a kernel's instruction stream changes, these fail with the precise
// arithmetic, functioning as the model's executable documentation.
#include <gtest/gtest.h>

#include "mme/mme.hpp"
#include "sim/chip_config.hpp"
#include "tensor/tensor.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"

namespace gaudi::tpc {
namespace {

using tensor::Shape;
using tensor::Tensor;

sim::TpcConfig cfg() { return sim::ChipConfig::hls1().tpc; }

RunResult run(const Kernel& k) {
  return TpcCluster(cfg()).run(k, ExecMode::kTiming);
}

TEST(CostModel, UnaryReluExactCycles) {
  // 512 elements = 1 member = 8 vectors on one core.
  // Per vector: load 4 (Load), mov+max 2 (VPU), store 4 (Store).
  // Member: Load 32, VPU 16, Store 32, SPU 1 (bookkeeping).
  // Elapsed = max = 32; plus launch overhead.
  const Tensor t = Tensor::phantom(Shape{{512}});
  const RunResult r = run(UnaryEwKernel(UnaryKind::kRelu, t, t));
  EXPECT_EQ(r.slot_totals.load, 32u);
  EXPECT_EQ(r.slot_totals.vpu, 16u);
  EXPECT_EQ(r.slot_totals.store, 32u);
  EXPECT_EQ(r.slot_totals.spu, 1u);
  EXPECT_EQ(r.cycles, 32u + cfg().launch_overhead_cycles);
}

TEST(CostModel, ExpCostsSixteenCyclesPerVector) {
  const Tensor t = Tensor::phantom(Shape{{512}});
  const RunResult relu = run(UnaryEwKernel(UnaryKind::kRelu, t, t));
  const RunResult exp = run(UnaryEwKernel(UnaryKind::kExp, t, t));
  // exp: 16 VPU per vector vs relu's 2 -> (16-2)*8 = 112 extra VPU issues.
  EXPECT_EQ(exp.slot_totals.vpu - relu.slot_totals.vpu, 112u);
  // The exp member is VPU-bound (128 > 32).
  EXPECT_EQ(exp.cycles, 128u + cfg().launch_overhead_cycles);
}

TEST(CostModel, SoftmaxRowCycleBudget) {
  // One row of 2048 = 32 vectors, cached in local memory.
  // Pass 1: 32 global loads (128 L), 32 local stores (32 S), 32 max (32 V).
  // Pass 2: 32 local loads (32 L), per vec add_s+exp+add = 18 V (576),
  //         32 local stores (32 S).
  // Pass 3: 32 local loads (32 L), 32 mul_s (32 V), 32 global stores (128 S).
  // Accumulator inits: 2 v_mov.  Reductions: max 12 + sum 12; recip 8
  // (SPU); bookkeeping 1 SPU.
  const Tensor t = Tensor::phantom(Shape{{1, 2048}});
  const RunResult r = run(SoftmaxKernel(t, t));
  EXPECT_EQ(r.slot_totals.load, 128u + 32 + 32);
  EXPECT_EQ(r.slot_totals.store, 32u + 32 + 128);
  EXPECT_EQ(r.slot_totals.vpu, 2u + 32 + 12 + 576 + 12 + 32);
  EXPECT_EQ(r.slot_totals.spu, 8u + 1);
  // VPU dominates: the reduction/exponential structure is the bottleneck,
  // exactly the paper's diagnosis.
  EXPECT_EQ(r.cycles, r.slot_totals.vpu + cfg().launch_overhead_cycles);
}

TEST(CostModel, TpcMatmulInnerLoopIsVpuBound) {
  // One member: 32x64 output tile over k=64: per k-block of 64:
  //   B stage: 64 global loads (256 L) + 64 local stores;
  //   A stage: 32 global loads (128 L) + 32 local stores;
  //   inner: 64 iters x (1 local B load + 16 paired A loads) = 1088 L,
  //          64 x 32 FMA = 2048 V.
  const Tensor a = Tensor::phantom(Shape{{1, 32, 64}});
  const Tensor b = Tensor::phantom(Shape{{1, 64, 64}});
  const Tensor c = Tensor::phantom(Shape{{1, 32, 64}});
  const RunResult r = run(BatchedMatMulTpcKernel(a, b, c));
  EXPECT_EQ(r.slot_totals.vpu, 32u /*acc init*/ + 2048u);
  EXPECT_EQ(r.slot_totals.load, 256u + 128 + 64 * (1 + 16));
  // VPU-bound inner loop -> ~1 FMA-vector per cycle, the 2.2 TFLOPS ceiling.
  EXPECT_GT(r.slot_totals.vpu, r.slot_totals.load);
}

TEST(CostModel, Bf16CastHalvesOneSideOfTraffic) {
  const std::int64_t n = 512;
  const Tensor f = Tensor::phantom(Shape{{n}});
  const Tensor b = Tensor::phantom(Shape{{n}}, tensor::DType::BF16);
  const RunResult down = run(CastKernel(f, b));
  // Loads f32 (4 cyc/vec), stores bf16 (2 cyc/vec): 8 vecs -> 32 L, 16 S.
  EXPECT_EQ(down.slot_totals.load, 32u);
  EXPECT_EQ(down.slot_totals.store, 16u);
  EXPECT_EQ(down.global_bytes, static_cast<std::uint64_t>(n * 4 + n * 2));
}

TEST(CostModel, LaunchOverheadAmortizes) {
  // Throughput (elements/cycle) improves with size as the fixed launch
  // overhead amortizes — the same effect as the MME's Table 2 droop.
  auto throughput = [&](std::int64_t n) {
    const Tensor t = Tensor::phantom(Shape{{n}});
    const RunResult r = run(UnaryEwKernel(UnaryKind::kRelu, t, t));
    return static_cast<double>(n) / static_cast<double>(r.cycles);
  };
  EXPECT_LT(throughput(1 << 10), 0.5 * throughput(1 << 18));
}

}  // namespace
}  // namespace gaudi::tpc

namespace gaudi::mme {
namespace {

TEST(CostModel, MmeCycleFormulaExact) {
  const sim::MmeConfig cfg = sim::ChipConfig::hls1().mme;
  const MmeEngine engine(cfg);
  // 256x256x256: 2x2 full tiles, each occupying k=256 cycles.
  const MmeRunResult r = engine.cost(GemmShape{1, 256, 256, 256});
  EXPECT_EQ(r.cycles, cfg.launch_overhead_cycles + 4u * 256 +
                          cfg.pipeline_fill_cycles);
  // Batch multiplies the tile count, not the overhead.
  const MmeRunResult rb = engine.cost(GemmShape{3, 256, 256, 256});
  EXPECT_EQ(rb.cycles, cfg.launch_overhead_cycles + 12u * 256 +
                           cfg.pipeline_fill_cycles);
}

}  // namespace
}  // namespace gaudi::mme

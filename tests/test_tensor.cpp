// Unit tests for the tensor substrate: shapes, storage, dtypes, and the
// reference math that defines the semantics the engines must match.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace gaudi::tensor {
namespace {

namespace ops = gaudi::tensor::ops;

TEST(Shape, BasicProperties) {
  const Shape s{{2, 3, 4}};
  EXPECT_EQ(s.rank(), 3u);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
  const auto strides = s.strides();
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
  EXPECT_EQ(s.batch_count(2), 2);
  EXPECT_EQ(s.batch_count(0), 24);
}

TEST(Shape, EnforcesTpcRankLimit) {
  EXPECT_NO_THROW((Shape{{1, 2, 3, 4, 5}}));
  EXPECT_THROW((Shape{{1, 2, 3, 4, 5, 6}}), sim::InvalidArgument);
  EXPECT_THROW(Shape{std::span<const std::int64_t>{}}, sim::InvalidArgument);
  EXPECT_THROW((Shape{{0}}), sim::InvalidArgument);
  EXPECT_THROW((Shape{{-3}}), sim::InvalidArgument);
}

TEST(Shape, EqualityAndReshape) {
  const Shape a{{2, 6}};
  EXPECT_TRUE(a == (Shape{{2, 6}}));
  EXPECT_FALSE(a == (Shape{{6, 2}}));
  EXPECT_EQ(a.reshaped({3, 4}).numel(), 12);
  EXPECT_THROW(a.reshaped({5}), sim::InvalidArgument);
  EXPECT_EQ(a.to_string(), "[2, 6]");
}

TEST(DType, SizesAndNames) {
  EXPECT_EQ(dtype_size(DType::F32), 4u);
  EXPECT_EQ(dtype_size(DType::BF16), 2u);
  EXPECT_EQ(dtype_size(DType::I32), 4u);
  EXPECT_EQ(dtype_size(DType::I16), 2u);
  EXPECT_EQ(dtype_size(DType::I8), 1u);
  EXPECT_EQ(dtype_name(DType::BF16), "bf16");
  EXPECT_TRUE(is_floating(DType::BF16));
  EXPECT_FALSE(is_floating(DType::I8));
}

TEST(DType, Bf16RoundTripExactForSmallIntegers) {
  for (float v : {0.0f, 1.0f, -2.0f, 0.5f, 256.0f, -0.25f}) {
    EXPECT_EQ(round_bf16(v), v) << v;
  }
}

TEST(DType, Bf16RoundsToNearestEven) {
  // bf16 has 8 mantissa bits: 1 + 2^-9 rounds down to 1, 1 + 3*2^-9 rounds
  // to 1 + 2^-7... verify the error bound: relative error <= 2^-8.
  const sim::CounterRng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(static_cast<std::uint64_t>(i), -100.0f, 100.0f);
    const float r = round_bf16(v);
    EXPECT_LE(std::abs(r - v), std::abs(v) * (1.0f / 256.0f) + 1e-30f);
  }
}

TEST(DType, Bf16HandlesNan) {
  const float nan = std::nanf("");
  EXPECT_TRUE(std::isnan(bf16_to_f32(f32_to_bf16(nan))));
}

TEST(Tensor, ZerosAndFull) {
  Tensor z = Tensor::zeros(Shape{{3, 3}});
  EXPECT_EQ(z.numel(), 9);
  for (float v : z.f32()) EXPECT_EQ(v, 0.0f);
  Tensor f = Tensor::full(Shape{{4}}, 2.5f);
  for (float v : f.f32()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, SharedStorageAndClone) {
  Tensor a = Tensor::full(Shape{{4}}, 1.0f);
  Tensor b = a;  // shallow
  b.f32()[0] = 9.0f;
  EXPECT_EQ(a.f32()[0], 9.0f);
  EXPECT_TRUE(a.aliases(b));
  Tensor c = a.clone();
  c.f32()[0] = 5.0f;
  EXPECT_EQ(a.f32()[0], 9.0f);
  EXPECT_FALSE(a.aliases(c));
}

TEST(Tensor, ReshapeSharesStorage) {
  Tensor a = Tensor::full(Shape{{2, 6}}, 3.0f);
  Tensor b = a.reshape(Shape{{3, 4}});
  EXPECT_TRUE(a.aliases(b));
  EXPECT_THROW(a.reshape(Shape{{5}}), sim::InvalidArgument);
}

TEST(Tensor, PhantomHasShapeButNoStorage) {
  Tensor p = Tensor::phantom(Shape{{1024, 1024}});
  EXPECT_FALSE(p.defined());
  EXPECT_EQ(p.numel(), 1024 * 1024);
}

TEST(Tensor, DtypeConversion) {
  Tensor a = Tensor::from_values(Shape{{3}}, std::vector<float>{1.0f, 2.5f, -3.75f});
  Tensor b = a.to(DType::BF16);
  EXPECT_EQ(b.dtype(), DType::BF16);
  Tensor c = b.to(DType::F32);
  EXPECT_NEAR(c.f32()[1], 2.5f, 0.01f);
  EXPECT_THROW(a.to(DType::I32), sim::InvalidArgument);
}

TEST(Tensor, AtSetAcrossDtypes) {
  Tensor t = Tensor::zeros(Shape{{4}}, DType::I32);
  t.set(2, 7.0f);
  EXPECT_EQ(t.i32()[2], 7);
  EXPECT_EQ(t.at(2), 7.0f);
  EXPECT_THROW(t.at(4), sim::InvalidArgument);
}

TEST(Tensor, RandomTokensInVocab) {
  Tensor t = Tensor::random_tokens(Shape{{100}}, sim::CounterRng{5}, 31);
  for (std::int32_t id : t.i32()) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 31);
  }
}

// ---------------------------------------------------------------------------
// Reference math
// ---------------------------------------------------------------------------

TEST(Ops, GemmMatchesNaive) {
  const sim::CounterRng rng(11);
  const Tensor a = Tensor::uniform(Shape{{7, 5}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape{{5, 9}}, rng.stream(2), -1.0f, 1.0f);
  Tensor c = Tensor::zeros(Shape{{7, 9}});
  ops::gemm(a, b, c);
  for (int i = 0; i < 7; ++i) {
    for (int j = 0; j < 9; ++j) {
      float acc = 0.0f;
      for (int k = 0; k < 5; ++k) acc += a.f32()[i * 5 + k] * b.f32()[k * 9 + j];
      EXPECT_NEAR(c.f32()[i * 9 + j], acc, 1e-4f);
    }
  }
}

TEST(Ops, GemmAccumulateAddsIntoC) {
  const Tensor a = Tensor::full(Shape{{2, 2}}, 1.0f);
  const Tensor b = Tensor::full(Shape{{2, 2}}, 1.0f);
  Tensor c = Tensor::full(Shape{{2, 2}}, 10.0f);
  ops::gemm(a, b, c, /*accumulate=*/true);
  EXPECT_EQ(c.f32()[0], 12.0f);
}

TEST(Ops, MatmulBatchedAndShared) {
  const sim::CounterRng rng(13);
  const Tensor a = Tensor::uniform(Shape{{3, 4, 5}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape{{3, 5, 2}}, rng.stream(2), -1.0f, 1.0f);
  const Tensor c = ops::matmul(a, b);
  EXPECT_TRUE(c.shape() == (Shape{{3, 4, 2}}));
  // Shared right operand (rank-2 B) applies to each batch.
  const Tensor w = Tensor::uniform(Shape{{5, 2}}, rng.stream(3), -1.0f, 1.0f);
  const Tensor d = ops::matmul(a, w);
  for (int batch = 0; batch < 3; ++batch) {
    const Tensor ab = Tensor::from_values(
        Shape{{4, 5}},
        std::span<const float>(a.f32().data() + batch * 20, 20));
    const Tensor expect = ops::matmul(ab, w);
    for (int i = 0; i < 8; ++i) {
      EXPECT_NEAR(d.f32()[batch * 8 + i], expect.f32()[i], 1e-4f);
    }
  }
}

TEST(Ops, MatmulValidatesShapes) {
  const Tensor a = Tensor::zeros(Shape{{2, 3}});
  const Tensor b = Tensor::zeros(Shape{{4, 5}});
  EXPECT_THROW(ops::matmul(a, b), sim::InvalidArgument);
}

TEST(Ops, LargeGemmThreadedMatchesSmallPath) {
  // Exercise the threaded path (work >= 2^18) against a column slice of the
  // single-threaded path.
  const sim::CounterRng rng(17);
  const Tensor a = Tensor::uniform(Shape{{128, 64}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape{{64, 128}}, rng.stream(2), -1.0f, 1.0f);
  const Tensor c = ops::matmul(a, b);
  float acc = 0.0f;
  for (int k = 0; k < 64; ++k) acc += a.f32()[37 * 64 + k] * b.f32()[k * 128 + 91];
  EXPECT_NEAR(c.f32()[37 * 128 + 91], acc, 1e-3f);
}

TEST(Ops, TransposeLast2) {
  const Tensor a =
      Tensor::from_values(Shape{{2, 3}}, std::vector<float>{1, 2, 3, 4, 5, 6});
  const Tensor t = ops::transpose_last2(a);
  EXPECT_TRUE(t.shape() == (Shape{{3, 2}}));
  EXPECT_EQ(t.f32()[0], 1.0f);
  EXPECT_EQ(t.f32()[1], 4.0f);
  EXPECT_EQ(t.f32()[2], 2.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  const Tensor x =
      Tensor::uniform(Shape{{6, 33}}, sim::CounterRng{19}, -5.0f, 5.0f);
  const Tensor y = ops::softmax_lastdim(x);
  for (int r = 0; r < 6; ++r) {
    double sum = 0.0;
    for (int j = 0; j < 33; ++j) {
      const float p = y.f32()[r * 33 + j];
      EXPECT_GT(p, 0.0f);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxIsShiftInvariant) {
  const Tensor x = Tensor::uniform(Shape{{2, 8}}, sim::CounterRng{23}, -1.0f, 1.0f);
  const Tensor y1 = ops::softmax_lastdim(x);
  const Tensor y2 = ops::softmax_lastdim(ops::add_scalar(x, 100.0f));
  EXPECT_LT(ops::max_abs_diff(y1, y2), 1e-5);
}

TEST(Ops, SoftmaxHandlesLargeMagnitudes) {
  const Tensor x =
      Tensor::from_values(Shape{{1, 3}}, std::vector<float>{1000.0f, 999.0f, 0.0f});
  const Tensor y = ops::softmax_lastdim(x);
  EXPECT_FALSE(std::isnan(y.f32()[0]));
  EXPECT_GT(y.f32()[0], y.f32()[1]);
  EXPECT_NEAR(y.f32()[2], 0.0f, 1e-6f);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  const Tensor x = Tensor::uniform(Shape{{4, 16}}, sim::CounterRng{29}, -3.0f, 3.0f);
  const Tensor a = ops::log_softmax_lastdim(x);
  const Tensor b = ops::log(ops::softmax_lastdim(x));
  EXPECT_LT(ops::max_abs_diff(a, b), 1e-4);
}

TEST(Ops, LayernormNormalizesRows) {
  const Tensor x = Tensor::uniform(Shape{{5, 64}}, sim::CounterRng{31}, -4.0f, 4.0f);
  const Tensor gamma = Tensor::full(Shape{{64}}, 1.0f);
  const Tensor beta = Tensor::zeros(Shape{{64}});
  const Tensor y = ops::layernorm_lastdim(x, gamma, beta);
  for (int r = 0; r < 5; ++r) {
    double mean = 0.0, var = 0.0;
    for (int j = 0; j < 64; ++j) mean += y.f32()[r * 64 + j];
    mean /= 64.0;
    for (int j = 0; j < 64; ++j) {
      const double d = y.f32()[r * 64 + j] - mean;
      var += d * d;
    }
    var /= 64.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Ops, LayernormAppliesGammaBeta) {
  const Tensor x = Tensor::uniform(Shape{{2, 8}}, sim::CounterRng{37}, -1.0f, 1.0f);
  const Tensor gamma = Tensor::full(Shape{{8}}, 2.0f);
  const Tensor beta = Tensor::full(Shape{{8}}, 3.0f);
  const Tensor base = ops::layernorm_lastdim(x, Tensor::full(Shape{{8}}, 1.0f),
                                             Tensor::zeros(Shape{{8}}));
  const Tensor y = ops::layernorm_lastdim(x, gamma, beta);
  const Tensor expect = ops::add_scalar(ops::mul_scalar(base, 2.0f), 3.0f);
  EXPECT_LT(ops::max_abs_diff(y, expect), 1e-4);
}

TEST(Ops, ReductionsMatchManual) {
  const Tensor x =
      Tensor::from_values(Shape{{2, 3}}, std::vector<float>{1, 2, 3, -1, 5, 0});
  EXPECT_EQ(ops::sum_lastdim(x).f32()[0], 6.0f);
  EXPECT_EQ(ops::sum_lastdim(x).f32()[1], 4.0f);
  EXPECT_EQ(ops::max_lastdim(x).f32()[1], 5.0f);
  EXPECT_EQ(ops::mean_lastdim(x).f32()[0], 2.0f);
  EXPECT_DOUBLE_EQ(ops::sum_all(x), 10.0);
}

TEST(Ops, ElementwiseFamilies) {
  const Tensor x = Tensor::from_values(Shape{{4}}, std::vector<float>{-2, -0.5, 0.5, 2});
  EXPECT_EQ(ops::relu(x).f32()[0], 0.0f);
  EXPECT_EQ(ops::relu(x).f32()[3], 2.0f);
  EXPECT_NEAR(ops::leaky_relu(x, 0.1f).f32()[0], -0.2f, 1e-6f);
  EXPECT_NEAR(ops::elu(x).f32()[0], std::exp(-2.0f) - 1.0f, 1e-6f);
  EXPECT_NEAR(ops::sigmoid(x).f32()[3], 1.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
  EXPECT_NEAR(ops::gelu(x).f32()[3], 1.9546f, 1e-3f);
  EXPECT_NEAR(ops::square(x).f32()[0], 4.0f, 1e-6f);
}

TEST(Ops, BinaryAndRowvec) {
  const Tensor a = Tensor::from_values(Shape{{2, 2}}, std::vector<float>{1, 2, 3, 4});
  const Tensor b = Tensor::from_values(Shape{{2, 2}}, std::vector<float>{5, 6, 7, 8});
  EXPECT_EQ(ops::add(a, b).f32()[0], 6.0f);
  EXPECT_EQ(ops::sub(a, b).f32()[1], -4.0f);
  EXPECT_EQ(ops::mul(a, b).f32()[2], 21.0f);
  EXPECT_EQ(ops::div(b, a).f32()[3], 2.0f);
  const Tensor v = Tensor::from_values(Shape{{2}}, std::vector<float>{10, 20});
  EXPECT_EQ(ops::add_rowvec(a, v).f32()[1], 22.0f);
  EXPECT_EQ(ops::mul_rowvec(a, v).f32()[2], 30.0f);
}

TEST(Ops, EmbeddingGather) {
  const Tensor table =
      Tensor::from_values(Shape{{3, 2}}, std::vector<float>{0, 1, 10, 11, 20, 21});
  Tensor ids = Tensor::zeros(Shape{{2}}, DType::I32);
  ids.i32()[0] = 2;
  ids.i32()[1] = 0;
  const Tensor out = ops::embedding_gather(table, ids);
  EXPECT_TRUE(out.shape() == (Shape{{2, 2}}));
  EXPECT_EQ(out.f32()[0], 20.0f);
  EXPECT_EQ(out.f32()[3], 1.0f);
  ids.i32()[0] = 3;
  EXPECT_THROW(ops::embedding_gather(table, ids), sim::InvalidArgument);
}

TEST(Ops, CrossEntropyMatchesManualAndGradSumsToZero) {
  const Tensor logits =
      Tensor::uniform(Shape{{4, 7}}, sim::CounterRng{41}, -2.0f, 2.0f);
  Tensor targets = Tensor::zeros(Shape{{4}}, DType::I32);
  for (int i = 0; i < 4; ++i) targets.i32()[i] = i % 7;
  Tensor dlogits;
  const double loss = ops::cross_entropy(logits, targets, &dlogits);

  const Tensor lsm = ops::log_softmax_lastdim(logits);
  double manual = 0.0;
  for (int i = 0; i < 4; ++i) manual -= lsm.f32()[i * 7 + targets.i32()[i]];
  EXPECT_NEAR(loss, manual / 4.0, 1e-5);
  // Each row of the gradient sums to zero (softmax minus one-hot).
  for (int i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (int j = 0; j < 7; ++j) sum += dlogits.f32()[i * 7 + j];
    EXPECT_NEAR(sum, 0.0, 1e-5);
  }
}

TEST(Ops, ComparisonUtilities) {
  const Tensor a = Tensor::from_values(Shape{{2}}, std::vector<float>{1.0f, 2.0f});
  const Tensor b = Tensor::from_values(Shape{{2}}, std::vector<float>{1.0f, 2.001f});
  EXPECT_NEAR(ops::max_abs_diff(a, b), 0.001, 1e-6);
  EXPECT_TRUE(ops::allclose(a, b, 1e-2, 1e-2));
  EXPECT_FALSE(ops::allclose(a, b, 1e-6, 1e-6));
  EXPECT_GT(ops::max_rel_diff(a, b), 0.0);
}

}  // namespace
}  // namespace gaudi::tensor

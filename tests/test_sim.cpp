// Unit tests for the simulation substrate: time base, RNG, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <vector>

#include "sim/chip_config.hpp"
#include "sim/error.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "sim/time.hpp"

namespace gaudi::sim {
namespace {

TEST(SimTime, ConversionsRoundTrip) {
  const SimTime t = SimTime::from_ms(12.5);
  EXPECT_DOUBLE_EQ(t.ms(), 12.5);
  EXPECT_DOUBLE_EQ(t.us(), 12500.0);
  EXPECT_EQ(t.ps(), 12'500'000'000LL);
  EXPECT_DOUBLE_EQ(SimTime::from_seconds(2.0).seconds(), 2.0);
}

TEST(SimTime, ArithmeticIsExact) {
  const SimTime a = SimTime::from_ps(3);
  const SimTime b = SimTime::from_ps(5);
  EXPECT_EQ((a + b).ps(), 8);
  EXPECT_EQ((b - a).ps(), 2);
  EXPECT_EQ((a * 7).ps(), 21);
  EXPECT_LT(a, b);
  EXPECT_EQ(SimTime::zero().ps(), 0);
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(to_string(SimTime::from_ms(12.0)), "12.000 ms");
  EXPECT_EQ(to_string(SimTime::from_us(3.5)), "3.500 us");
  EXPECT_EQ(to_string(SimTime::from_seconds(1.25)), "1.250 s");
}

TEST(Clock, CycleConversionRoundsUp) {
  const Clock c(1e9);  // 1 GHz -> 1 ns per cycle
  EXPECT_EQ(c.to_time(10).ps(), 10'000);
  // A partial cycle still occupies a full cycle.
  EXPECT_EQ(c.to_cycles(SimTime::from_ps(1500)), 2u);
  EXPECT_EQ(c.to_cycles(SimTime::from_ps(1000)), 1u);
}

TEST(Clock, HigherFrequencyShorterPeriod) {
  EXPECT_LT(Clock(2e9).to_time(100).ps(), Clock(1e9).to_time(100).ps());
}

TEST(CounterRng, DeterministicPerCounter) {
  const CounterRng rng(42, 7);
  EXPECT_EQ(rng.bits(0), CounterRng(42, 7).bits(0));
  EXPECT_NE(rng.bits(0), rng.bits(1));
  EXPECT_NE(rng.bits(0), CounterRng(43, 7).bits(0));
  EXPECT_NE(rng.bits(0), rng.stream(1).bits(0));
}

TEST(CounterRng, UniformInRange) {
  const CounterRng rng(1);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const float u = rng.uniform(i);
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
  const float v = rng.uniform(3, -2.0f, 2.0f);
  EXPECT_GE(v, -2.0f);
  EXPECT_LT(v, 2.0f);
}

TEST(CounterRng, UniformMeanIsCentered) {
  const CounterRng rng(123);
  double sum = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform(static_cast<std::uint64_t>(i));
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(CounterRng, NormalMomentsAreStandard) {
  const CounterRng rng(7);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal(static_cast<std::uint64_t>(i));
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(CounterRng, BelowStaysInRange) {
  const CounterRng rng(9);
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.below(i, 17);
    EXPECT_LT(v, 17u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 17u);  // all residues hit over 1000 draws
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForChunksPartition) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_chunks(12345, [&](std::size_t b, std::size_t e) {
    ASSERT_LE(b, e);
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 12345u);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for_chunks(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  // A parallel_for issued from inside a worker task must not queue-and-wait
  // (deadlock once every worker blocks); the inner range runs inline.  With
  // 2 workers and 8 outer tasks each fanning out 8 inner increments, the
  // pre-fix pool hangs here.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 57) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(Errors, CheckMacroThrowsTyped) {
  EXPECT_THROW(GAUDI_CHECK(false, "bad arg"), InvalidArgument);
  EXPECT_THROW(GAUDI_ASSERT(false, "broken"), InternalError);
  try {
    GAUDI_CHECK(1 == 2, "specific message");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("specific message"), std::string::npos);
  }
}

TEST(ChipConfig, Hls1MatchesPaperHeadlines) {
  const ChipConfig cfg = ChipConfig::hls1();
  // MME peak ~14.6 TFLOPS f32 (Table 2 saturation), TPC cluster ~2.2.
  EXPECT_NEAR(cfg.mme.peak_flops() * 1e-12, 14.6, 0.3);
  EXPECT_NEAR(cfg.tpc.cluster_peak_flops() * 1e-12, 2.2, 0.1);
  // Paper §2.2: 2048-bit SIMD, 8 cores, 80 KB + 1 KB local memories,
  // 4-cycle global vector access; §3.1: 32 GB on-chip memory.
  EXPECT_EQ(cfg.tpc.vector_bits, 2048u);
  EXPECT_EQ(cfg.tpc.num_cores, 8u);
  EXPECT_EQ(cfg.tpc.vector_local_bytes, 80u * 1024);
  EXPECT_EQ(cfg.tpc.scalar_local_bytes, 1024u);
  EXPECT_EQ(cfg.tpc.global_access_cycles, 4u);
  EXPECT_EQ(cfg.memory.hbm_bytes, 32ull * 1024 * 1024 * 1024);
}

}  // namespace
}  // namespace gaudi::sim

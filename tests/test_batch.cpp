// Batch-experiment runner: config grammar, stats aggregation, and
// byte-deterministic parallel execution.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/batch.hpp"
#include "core/stats_sink.hpp"
#include "sim/error.hpp"

namespace gaudi::core {
namespace {

BatchConfig parse(const std::string& text) {
  std::istringstream is(text);
  return parse_batch_config(is);
}

// --- Grammar ---------------------------------------------------------------

TEST(BatchConfig, ParsesExperimentsWithAllDirectives) {
  const BatchConfig cfg = parse(R"(# serving study
experiment sweep
  command serve
  set requests 16        # trailing comment
  sweep rate 4 8 16
  sweep max-batch 2 4
  seeds 0x5E21E 99
  repeats 3
  timing-only on
end

experiment probe
  command mme-vs-tpc
  sweep size 128 512
end
)");
  ASSERT_EQ(cfg.experiments.size(), 2u);
  const BatchExperiment& e = cfg.experiments[0];
  EXPECT_EQ(e.name, "sweep");
  EXPECT_EQ(e.command, "serve");
  ASSERT_EQ(e.fixed.size(), 1u);
  EXPECT_EQ(e.fixed[0], (std::pair<std::string, std::string>{"requests", "16"}));
  ASSERT_EQ(e.sweeps.size(), 2u);
  EXPECT_EQ(e.sweeps[0].second.size(), 3u);
  ASSERT_EQ(e.seeds.size(), 2u);
  EXPECT_EQ(e.seeds[0], 0x5E21Eu);  // hex spelling accepted
  EXPECT_EQ(e.seeds[1], 99u);
  EXPECT_EQ(e.repeats, 3);
  ASSERT_TRUE(e.timing_only.has_value());
  EXPECT_TRUE(*e.timing_only);
  EXPECT_FALSE(cfg.experiments[1].timing_only.has_value());
}

TEST(BatchConfig, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), sim::InvalidArgument);
  EXPECT_THROW(parse("set rate 8\n"), sim::InvalidArgument);  // outside exp
  EXPECT_THROW(parse("experiment a\ncommand serve\n"),
               sim::InvalidArgument);  // missing end
  EXPECT_THROW(parse("experiment a\nend\n"),
               sim::InvalidArgument);  // no command
  EXPECT_THROW(parse("experiment a\ncommand bogus\nend\n"),
               sim::InvalidArgument);
  EXPECT_THROW(parse("experiment a\ncommand serve\nsweep rate\nend\n"),
               sim::InvalidArgument);  // empty sweep
  EXPECT_THROW(
      parse("experiment a\ncommand serve\nset rate 4\nsweep rate 8 16\nend\n"),
      sim::InvalidArgument);  // duplicate key
  EXPECT_THROW(parse("experiment a\ncommand serve\nseeds nope\nend\n"),
               sim::InvalidArgument);
  EXPECT_THROW(parse("experiment a\ncommand serve\nrepeats 0\nend\n"),
               sim::InvalidArgument);
  EXPECT_THROW(
      parse("experiment a\ncommand serve\nend\nexperiment a\ncommand serve\nend\n"),
      sim::InvalidArgument);  // duplicate name
  EXPECT_THROW(parse("experiment a\ncommand serve\nwat 1\nend\n"),
               sim::InvalidArgument);
}

// --- StatsSink -------------------------------------------------------------

TEST(StatsSinkTest, AggregatesPerCellWithDeterministicFormatting) {
  StatsSink sink;
  sink.add("e", "rate=8", "tput", 10.0);
  sink.add("e", "rate=8", "tput", 30.0);
  sink.add("e", "rate=8", "tput", 20.0);
  sink.add("e", "rate=16", "tput", 5.0);
  EXPECT_EQ(sink.samples(), 4u);
  EXPECT_EQ(sink.series(), 2u);
  EXPECT_EQ(sink.csv(),
            "experiment,cell,metric,n,mean,p50,p99\n"
            "e,rate=8,tput,3,20,20,30\n"
            "e,rate=16,tput,1,5,5,5\n");
  // The table renders the same rows.
  EXPECT_NE(sink.table().find("rate=8"), std::string::npos);
}

// --- Execution -------------------------------------------------------------

constexpr const char* kTinyServe = R"(
experiment tiny
  command serve
  set model tiny
  set requests 10
  set prompt-min 2
  set prompt-max 6
  set output-min 2
  set output-max 4
  set max-batch 2
  set prefill-chunk 4
  set ctx-bucket 4
  set block-tokens 4
  set kv-mb 1
  sweep rate 50 200
  seeds 0x5E21E 7
  repeats 2
  timing-only on
end
)";

TEST(BatchRun, GridShapeAndReplicaCounts) {
  const BatchConfig cfg = parse(kTinyServe);
  const BatchRunResult r = run_batch(cfg);
  EXPECT_EQ(r.cells, 2u);   // two rates
  EXPECT_EQ(r.runs, 8u);    // 2 cells x 2 seeds x 2 repeats
  // Every metric series carries all four replicas of its cell.
  EXPECT_NE(r.csv.find("tiny,rate=50,throughput_tok_s,4,"), std::string::npos)
      << r.csv;
}

TEST(BatchRun, ByteDeterministicAcrossRunsAndThreadCounts) {
  const BatchConfig cfg = parse(kTinyServe);
  BatchOptions serial;
  serial.threads = 1;
  BatchOptions wide;
  wide.threads = 8;
  const std::string a = run_batch(cfg, serial).csv;
  const std::string b = run_batch(cfg, wide).csv;
  const std::string c = run_batch(cfg, wide).csv;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(BatchRun, TimingOnlyOffMatchesOn) {
  // The fast path must not change a single reported number.
  BatchConfig on = parse(kTinyServe);
  BatchConfig off = parse(kTinyServe);
  off.experiments[0].timing_only = false;
  EXPECT_EQ(run_batch(on).csv, run_batch(off).csv);
}

TEST(BatchRun, UnknownKeyFailsLoudly) {
  const BatchConfig cfg = parse(R"(
experiment typo
  command serve
  set model tiny
  set requets 8
  set prompt-min 2
  set prompt-max 4
  set output-min 2
  set output-max 2
  set kv-mb 1
  set block-tokens 4
  timing-only on
end
)");
  EXPECT_THROW((void)run_batch(cfg), sim::InvalidArgument);
}

}  // namespace
}  // namespace gaudi::core

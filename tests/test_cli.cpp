// CLI tests: the option parser's contract and end-to-end command dispatch.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cli.hpp"
#include "sim/error.hpp"

namespace gaudi::core {
namespace {

int run(std::initializer_list<const char*> args, std::string* out = nullptr) {
  std::vector<std::string> v{"gaudisim_cli"};
  v.insert(v.end(), args.begin(), args.end());
  std::ostringstream os;
  const int rc = run_cli(v, os);
  if (out) *out = os.str();
  return rc;
}

TEST(ArgParser, KeyValueAndFlags) {
  ArgParser p({"--seq", "1024", "--fuse", "--policy", "overlap"});
  EXPECT_EQ(p.get_int("seq", 0), 1024);
  EXPECT_TRUE(p.has("fuse"));
  EXPECT_EQ(p.get("policy", "barrier"), "overlap");
  EXPECT_EQ(p.get("missing", "fallback"), "fallback");
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_TRUE(p.unused().empty());
}

TEST(ArgParser, TracksUnusedKeys) {
  ArgParser p({"--typo", "3"});
  EXPECT_EQ(p.unused().size(), 1u);
  EXPECT_EQ(p.unused()[0], "typo");
  (void)p.get("typo", "");
  EXPECT_TRUE(p.unused().empty());
}

TEST(ArgParser, RejectsMalformedTokens) {
  EXPECT_THROW(ArgParser({"seq", "1024"}), sim::InvalidArgument);
  ArgParser p({"--seq", "abc"});
  EXPECT_THROW(p.get_int("seq", 0), sim::InvalidArgument);
}

TEST(Cli, HelpAndUnknownCommand) {
  std::string out;
  EXPECT_EQ(run({"help"}, &out), 0);
  EXPECT_NE(out.find("usage:"), std::string::npos);
  EXPECT_EQ(run({"frobnicate"}, &out), 1);
  EXPECT_NE(out.find("unknown command"), std::string::npos);
  EXPECT_EQ(run({}, &out), 1);
}

TEST(Cli, OpMappingPrintsTable1) {
  std::string out;
  EXPECT_EQ(run({"op-mapping"}, &out), 0);
  EXPECT_NE(out.find("torch.matmul"), std::string::npos);
  EXPECT_NE(out.find("MME"), std::string::npos);
}

TEST(Cli, MmeVsTpcWithCustomSizes) {
  std::string out;
  EXPECT_EQ(run({"mme-vs-tpc", "--sizes", "128,256"}, &out), 0);
  EXPECT_NE(out.find("128"), std::string::npos);
  EXPECT_NE(out.find("256"), std::string::npos);
  EXPECT_EQ(out.find("512"), std::string::npos);
}

TEST(Cli, ProfileLayerSmallConfig) {
  std::string out;
  EXPECT_EQ(run({"profile-layer", "--attention", "linear", "--seq", "128",
                 "--batch", "4", "--policy", "overlap", "--fuse"},
                &out),
            0);
  EXPECT_NE(out.find("layer / linear"), std::string::npos);
  EXPECT_NE(out.find("MME busy"), std::string::npos);
}

TEST(Cli, ProfileModelSmallConfig) {
  std::string out;
  EXPECT_EQ(run({"profile-model", "--arch", "bert", "--seq", "128", "--batch",
                 "2", "--layers", "1", "--optimizer", "sgd"},
                &out),
            0);
  EXPECT_NE(out.find("bert training step"), std::string::npos);
  EXPECT_NE(out.find("parameters"), std::string::npos);
}

TEST(Cli, BadOptionValuesFailCleanly) {
  std::string out;
  EXPECT_EQ(run({"profile-layer", "--attention", "quantum"}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_EQ(run({"profile-model", "--arch", "t5"}, &out), 1);
  EXPECT_EQ(run({"profile-layer", "--nonsense", "1"}, &out), 1);
  EXPECT_NE(out.find("unknown option"), std::string::npos);
  EXPECT_EQ(run({"profile-model", "--optimizer", "rmsprop"}, &out), 1);
}

TEST(Cli, ProfileLayerAcceptsFaultFlags) {
  std::string out;
  EXPECT_EQ(run({"profile-layer", "--seq", "128", "--batch", "2", "--faults",
                 "--fault-seed", "7", "--validate"},
                &out),
            0);
  EXPECT_NE(out.find("layer /"), std::string::npos);
  // Same seed, same flags: the fault-injected profile is deterministic.
  std::string again;
  EXPECT_EQ(run({"profile-layer", "--seq", "128", "--batch", "2", "--faults",
                 "--fault-seed", "7", "--validate"},
                &again),
            0);
  EXPECT_EQ(out, again);
}

TEST(Cli, TrainResilientReportsGoodputDeterministically) {
  std::string out;
  EXPECT_EQ(run({"train-resilient", "--steps", "300", "--mtbf", "50",
                 "--recovery", "young-daly"},
                &out),
            0);
  EXPECT_NE(out.find("policy young-daly"), std::string::npos);
  EXPECT_NE(out.find("goodput"), std::string::npos);
  std::string again;
  EXPECT_EQ(run({"train-resilient", "--steps", "300", "--mtbf", "50",
                 "--recovery", "young-daly"},
                &again),
            0);
  EXPECT_EQ(out, again);

  EXPECT_EQ(run({"train-resilient", "--steps", "300", "--mtbf", "50",
                 "--recovery", "fixed", "--interval", "25"},
                &out),
            0);
  EXPECT_NE(out.find("policy fixed-interval"), std::string::npos);
}

TEST(Cli, TrainResilientRejectsBadFlags) {
  std::string out;
  EXPECT_EQ(run({"train-resilient", "--recovery", "hope"}, &out), 1);
  EXPECT_NE(out.find("unknown recovery policy"), std::string::npos);
  EXPECT_EQ(run({"train-resilient", "--mtbf", "-5"}, &out), 1);
  EXPECT_EQ(run({"train-resilient", "--nonsense", "1"}, &out), 1);
}

TEST(Cli, UsageMentionsFaultTooling) {
  std::string out;
  run({"help"}, &out);
  EXPECT_NE(out.find("train-resilient"), std::string::npos);
  EXPECT_NE(out.find("--faults"), std::string::npos);
  EXPECT_NE(out.find("GAUDI_FAULTS"), std::string::npos);
  EXPECT_NE(out.find("--guard"), std::string::npos);
  EXPECT_NE(out.find("--sdc-rate"), std::string::npos);
}

TEST(Cli, ProfileLayerGuardReportsSweepCoverage) {
  std::string out;
  EXPECT_EQ(run({"profile-layer", "--seq", "128", "--batch", "2", "--guard",
                 "warn", "--validate"},
                &out),
            0);
  EXPECT_NE(out.find("guard: warn, swept"), std::string::npos);
  // Guard off: no guard line at all.
  std::string plain;
  EXPECT_EQ(run({"profile-layer", "--seq", "128", "--batch", "2", "--guard",
                 "off"},
                &plain),
            0);
  EXPECT_EQ(plain.find("guard:"), std::string::npos);
  EXPECT_EQ(run({"profile-layer", "--guard", "paranoid"}, &out), 1);
  EXPECT_NE(out.find("unknown guard policy"), std::string::npos);
}

TEST(Cli, TrainWithLossScalingSurvivesCorruptedGradient) {
  // The acceptance scenario: a NaN'd gradient without loss scaling ruins
  // the parameters (non-finite final loss, exit 1); with the GradScaler the
  // step is skipped, the scale backs off, and training finishes finite.
  std::string unprotected;
  EXPECT_EQ(run({"train", "--steps", "3", "--corrupt-step", "1",
                 "--no-loss-scaling"},
                &unprotected),
            1);
  EXPECT_NE(unprotected.find("NOT finite"), std::string::npos);

  std::string protected_out;
  EXPECT_EQ(run({"train", "--steps", "3", "--corrupt-step", "1"},
                &protected_out),
            0);
  EXPECT_NE(protected_out.find("skipped (overflow)"), std::string::npos);
  EXPECT_NE(protected_out.find("skipped steps: 1"), std::string::npos);
  EXPECT_NE(protected_out.find("final scale: 32768"), std::string::npos);
  EXPECT_NE(protected_out.find("(finite)"), std::string::npos);
}

TEST(Cli, TrainGuardedSdcRunIsCaughtAndDeterministic) {
  // Seeded HBM bit flips with the guard warning: the run reports the flips
  // and still finishes finite; identical seeds reproduce identical output.
  std::string out;
  EXPECT_EQ(run({"train", "--steps", "4", "--sdc-rate", "0.02",
                 "--fault-seed", "11", "--guard", "warn"},
                &out),
            0);
  EXPECT_NE(out.find("sdc bit flips:"), std::string::npos);
  EXPECT_EQ(out.find("sdc bit flips: 0 "), std::string::npos);
  EXPECT_NE(out.find("(finite)"), std::string::npos);
  std::string again;
  EXPECT_EQ(run({"train", "--steps", "4", "--sdc-rate", "0.02",
                 "--fault-seed", "11", "--guard", "warn"},
                &again),
            0);
  EXPECT_EQ(out, again);
  EXPECT_EQ(run({"train", "--sdc-rate", "1.5"}, &out), 1);
  EXPECT_EQ(run({"train", "--sdc-rate", "lots"}, &out), 1);
}

}  // namespace
}  // namespace gaudi::core

// Multi-replica serving cluster: failure detection, failover with KV
// re-prefill, hedged requests, and circuit breaking.
//
// The contracts under test mirror the single-replica scheduler's: every
// offered request ends in exactly one typed outcome, same seed means
// byte-identical reports, and a cluster whose injector is disabled is
// byte-identical to a fault-free configuration.  On top of those, the
// fleet-level claims: N >= 2 replicas beat one replica's availability under
// the same per-replica fault stream, hedges race and cancel losers, and a
// flapping replica's breaker opens.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "graph/runtime.hpp"
#include "nn/decode.hpp"
#include "serve/cluster.hpp"
#include "serve/workload.hpp"
#include "sim/error.hpp"
#include "sim/fault.hpp"

namespace gaudi {
namespace {

serve::StreamConfig tiny_stream(std::int64_t n = 12, double rate = 200.0) {
  serve::StreamConfig cfg;
  cfg.arrival_rate_rps = rate;
  cfg.num_requests = n;
  cfg.prompt = {2, 4};
  cfg.output = {2, 3};
  cfg.seed = 0xBEEF;
  return cfg;
}

serve::ClusterConfig tiny_cluster(std::int64_t replicas = 2) {
  serve::ClusterConfig cfg;
  cfg.replica.model = nn::DecodeConfig::tiny();
  cfg.replica.max_batch = 2;
  cfg.replica.prefill_chunk = 4;
  cfg.replica.ctx_bucket = 4;
  cfg.replica.block_tokens = 4;
  cfg.replica.kv_budget_bytes = 4096;  // 8 blocks of 4 tokens
  cfg.replica.timing_only = true;
  cfg.replicas = replicas;
  return cfg;
}

sim::FaultProfile chip_killer_profile(double rate) {
  sim::FaultProfile p;
  p.chip_failure_rate = rate;
  return p;
}

/// Sums the per-outcome counters; every offered request must land in
/// exactly one of them.
std::int64_t outcome_total(const serve::ServeSummary& s) {
  return s.completed + s.rejected + s.dropped + s.shed + s.timed_out +
         s.failed;
}

TEST(Cluster, SameSeedRunsAreByteIdentical) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  serve::ClusterConfig cfg = tiny_cluster(3);
  cfg.fault_profile = chip_killer_profile(0.1);
  cfg.hedge_budget = sim::SimTime::from_ms(2.0);
  serve::ClusterRouter a(rt, cfg);
  serve::ClusterRouter b(rt, cfg);
  const std::string ra = a.run(stream).to_report();
  const std::string rb = b.run(stream).to_report();
  EXPECT_EQ(ra, rb);
  EXPECT_NE(ra.find("cluster:"), std::string::npos);
}

TEST(Cluster, DisabledInjectorMatchesFaultFreeConfig) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  // Fault-free config vs a config whose injector exists but is disabled
  // (all rates zero) under a different seed: the seed must be unreachable.
  serve::ClusterConfig fault_free = tiny_cluster(3);
  serve::ClusterConfig disabled = tiny_cluster(3);
  disabled.fault_profile = sim::FaultProfile::disabled();
  disabled.fault_seed = 0xDEAD;
  serve::ClusterRouter a(rt, fault_free);
  serve::ClusterRouter b(rt, disabled);
  const serve::ClusterReport ra = a.run(stream);
  const serve::ClusterReport rb = b.run(stream);
  EXPECT_FALSE(ra.faults_enabled);
  EXPECT_FALSE(rb.faults_enabled);
  EXPECT_EQ(ra.to_report(), rb.to_report());
  EXPECT_EQ(ra.chip_failures, 0);
  EXPECT_EQ(ra.summary.completed, ra.summary.offered);
}

TEST(Cluster, FailoverCompletesOrTypesEveryRequest) {
  // Aggressive chip loss at N=2 with a validating allocator: requests fail
  // over with a full re-prefill and every one of them ends in exactly one
  // typed outcome.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  serve::ClusterConfig cfg = tiny_cluster(2);
  cfg.fault_profile = chip_killer_profile(0.25);
  cfg.replica.retry_max = 4;
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  ::unsetenv("GAUDI_VALIDATE");

  EXPECT_EQ(r.summary.offered, 16);
  EXPECT_EQ(outcome_total(r.summary), r.summary.offered);
  EXPECT_GT(r.chip_failures, 0);
  EXPECT_GT(r.failovers, 0);
  // Failed-over work re-prefills from scratch: the thrown-away rows are
  // accounted as wasted.
  EXPECT_GT(r.summary.wasted_tokens, 0);
  for (const serve::RequestMetrics& m : r.requests) {
    if (m.outcome == serve::RequestOutcome::kCompleted) {
      EXPECT_GT(m.tokens_out, 0) << "request " << m.id;
    }
  }
}

TEST(Cluster, ReplicasBeatSingleReplicaAvailabilityUnderFaults) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  auto availability = [&](std::int64_t replicas) {
    serve::ClusterConfig cfg = tiny_cluster(replicas);
    cfg.fault_profile = chip_killer_profile(0.3);
    cfg.replica.retry_max = 1;
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    return r.summary.availability;
  };
  const double one = availability(1);
  const double three = availability(3);
  EXPECT_LT(one, 1.0);
  EXPECT_GT(three, one);
}

TEST(Cluster, HedgeRacesAndCancelsTheLoser) {
  // One batch slot per replica and a burst of simultaneous arrivals: the
  // primary queues behind its replica's backlog, the duplicate lands on a
  // less-loaded replica and wins the race; the loser's rows are wasted.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(12, 2000.0));
  serve::ClusterConfig cfg = tiny_cluster(2);
  cfg.replica.max_batch = 1;
  cfg.hedge_budget = sim::SimTime::from_ms(1.0);
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  EXPECT_TRUE(r.hedging_enabled);
  EXPECT_GT(r.hedges_launched, 0);
  EXPECT_EQ(outcome_total(r.summary), r.summary.offered);
  EXPECT_EQ(r.summary.completed, r.summary.offered);
  // The duplicate's report line renders only when hedging is on.
  EXPECT_NE(r.to_report().find("hedges:"), std::string::npos);
}

TEST(Cluster, HedgeWinnerFailoverChainResolvesEveryRequest) {
  // Regression: a hedge wins, the winning replica dies (the request fails
  // over and re-dispatches under its original id), then the re-dispatched
  // side's replica dies too.  The resume must read as the last live
  // carrier — not as the dead winner's leftover twin — or the track leaks
  // and the router stalls with no future event.  Hammer the interaction
  // across fault seeds; every request must still end in one typed outcome.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16, 400.0));
  for (std::uint64_t fault_seed = 1; fault_seed <= 8; ++fault_seed) {
    serve::ClusterConfig cfg = tiny_cluster(3);
    cfg.fault_profile = chip_killer_profile(0.35);
    cfg.fault_seed = fault_seed;
    cfg.hedge_budget = sim::SimTime::from_ms(1.0);
    cfg.replica.retry_max = 4;
    cfg.breaker_min_samples = 2;
    cfg.breaker_window = 4;
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    EXPECT_EQ(outcome_total(r.summary), r.summary.offered)
        << "fault_seed " << fault_seed;
  }
  ::unsetenv("GAUDI_VALIDATE");
}

TEST(Cluster, BreakerOpensOnFlappingReplicaAndRunStillEnds) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  serve::ClusterConfig cfg = tiny_cluster(2);
  cfg.fault_profile = chip_killer_profile(0.5);
  cfg.replica.retry_max = 6;
  cfg.breaker_min_samples = 2;
  cfg.breaker_window = 4;
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  EXPECT_GT(r.breaker_opens, 0);
  EXPECT_EQ(outcome_total(r.summary), r.summary.offered);
  std::int64_t per_replica_opens = 0;
  for (const serve::ReplicaStats& s : r.per_replica) {
    per_replica_opens += s.breaker_opens;
  }
  EXPECT_EQ(per_replica_opens, r.breaker_opens);
}

TEST(Cluster, LoadBalancePoliciesSpreadAndParse) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(12));
  for (const serve::LoadBalancePolicy policy :
       {serve::LoadBalancePolicy::kRoundRobin,
        serve::LoadBalancePolicy::kJoinShortestQueue,
        serve::LoadBalancePolicy::kLeastKvLoad}) {
    serve::ClusterConfig cfg = tiny_cluster(3);
    cfg.policy = policy;
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    EXPECT_EQ(r.summary.completed, 12) << serve::load_balance_policy_name(policy);
    // Fault-free with every policy: nobody starves, at least two replicas
    // see work (12 requests over 3 replicas).
    std::int64_t busy_replicas = 0;
    for (const serve::ReplicaStats& s : r.per_replica) {
      busy_replicas += s.dispatched > 0 ? 1 : 0;
    }
    EXPECT_GE(busy_replicas, 2) << serve::load_balance_policy_name(policy);
    EXPECT_EQ(serve::parse_load_balance_policy(
                  serve::load_balance_policy_name(policy)),
              policy);
  }
  EXPECT_THROW((void)serve::parse_load_balance_policy("fastest"),
               sim::InvalidArgument);
}

TEST(Cluster, RejectsBadConfigs) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  {
    serve::ClusterConfig cfg = tiny_cluster(0);
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.suspicion_timeout = sim::SimTime::zero();
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.breaker_threshold = 1.5;
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.breaker_min_samples = 9;  // > breaker_window of 8
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    // Replica-level injectors are the cluster's job: a pre-wired one is a
    // config error, not silently doubled fault exposure.
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.replica.faults =
        sim::FaultInjector{0x5EED, chip_killer_profile(0.1)};
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    // Satellite: non-positive backoff cap is a named InvalidArgument.
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.replica.retry_backoff_max = sim::SimTime::zero();
    try {
      serve::ClusterRouter router(rt, cfg);
      FAIL() << "expected InvalidArgument";
    } catch (const sim::InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("retry_backoff_max"),
                std::string::npos);
    }
  }
}

// ------------------------------------------- live migration & draining

sim::FaultProfile degrading_profile(double straggler, double hbm,
                                    double chip = 0.0) {
  sim::FaultProfile p;
  p.tpc_straggler_rate = straggler;
  p.hbm_pressure_rate = hbm;
  p.chip_failure_rate = chip;
  p.transient_link_rate = 0.2;
  p.link_degradation_rate = 0.1;
  return p;
}

TEST(Migration, DisabledIsByteIdenticalEvenWithHealthKnobsSet) {
  // The health knobs are inert while migration and draining are both off:
  // no extra draws, no report lines, byte-identical output.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  serve::ClusterConfig plain = tiny_cluster(3);
  plain.fault_profile = chip_killer_profile(0.1);
  serve::ClusterConfig knobbed = plain;
  knobbed.health_window = sim::SimTime::from_ms(1.0);
  knobbed.degraded_after = 1;
  serve::ClusterRouter a(rt, plain);
  serve::ClusterRouter b(rt, knobbed);
  const std::string ra = a.run(stream).to_report();
  const std::string rb = b.run(stream).to_report();
  EXPECT_EQ(ra, rb);
  EXPECT_EQ(ra.find("migrate:"), std::string::npos);
  EXPECT_EQ(ra.find("drain:"), std::string::npos);
}

TEST(Migration, AdminDrainCompletesWithoutFailures) {
  // Planned maintenance: drain a replica mid-run with migration on.  Every
  // request completes — running work streams its KV to a peer, queued work
  // re-routes — and the drained replica ends empty.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::StreamConfig scfg = tiny_stream(16, 400.0);
  scfg.output = {6, 10};
  const auto stream = serve::poisson_stream(scfg);
  serve::ClusterConfig cfg = tiny_cluster(3);
  cfg.replica.kv_budget_bytes = 16384;
  cfg.migration.enabled = true;
  cfg.drain_replica = 0;
  cfg.drain_at = sim::SimTime::from_ms(3.0);
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  ::unsetenv("GAUDI_VALIDATE");

  EXPECT_EQ(r.summary.completed, r.summary.offered);
  EXPECT_EQ(r.summary.failed, 0);
  EXPECT_TRUE(r.drain_completed);
  const std::string report = r.to_report();
  EXPECT_NE(report.find("migrate:"), std::string::npos);
  EXPECT_NE(report.find("drain:    replica 0 drained cleanly"),
            std::string::npos);
}

TEST(Migration, DrainWithoutMigrationEvacuatesTheQueueLosslessly) {
  // Migration off, drain on: the pre-migration path evacuates by
  // preempt-and-requeue — running work re-prefills on a peer, queued work
  // re-routes for free.  Nothing fails; only recompute is billed.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16, 800.0));
  serve::ClusterConfig cfg = tiny_cluster(3);
  cfg.drain_replica = 1;
  cfg.drain_at = sim::SimTime::zero();
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  EXPECT_EQ(r.summary.completed, r.summary.offered);
  EXPECT_EQ(r.summary.failed, 0);
  EXPECT_EQ(r.migrations_started, 0);
  EXPECT_TRUE(r.drain_completed);
  // Drained from the first instant: replica 1 never hosts a dispatch.
  EXPECT_EQ(r.per_replica[1].dispatched, 0);
  const std::string report = r.to_report();
  EXPECT_EQ(report.find("migrate:"), std::string::npos);
  EXPECT_NE(report.find("drain:"), std::string::npos);
}

TEST(Migration, DrainMigratesKvInsteadOfReprefilling) {
  // The tentpole claim: a drained replica's in-flight decodes move with
  // their KV — rows kept, zero re-prefill, zero preemption billing.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::StreamConfig scfg = tiny_stream(12, 2000.0);
  scfg.prompt = {4, 6};   // context stays under tiny()'s max_seq of 16
  scfg.output = {6, 9};
  const auto stream = serve::poisson_stream(scfg);
  serve::ClusterConfig cfg = tiny_cluster(2);
  cfg.replica.max_batch = 4;
  cfg.replica.kv_budget_bytes = 65536;
  cfg.migration.enabled = true;
  cfg.drain_replica = 0;
  cfg.drain_at = sim::SimTime::from_ms(2.0);
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  ::unsetenv("GAUDI_VALIDATE");

  EXPECT_EQ(r.summary.completed, r.summary.offered);
  EXPECT_EQ(r.summary.failed, 0);
  EXPECT_GT(r.migrations_completed, 0);
  EXPECT_GT(r.migrated_rows, 0);
  EXPECT_EQ(r.summary.recomputed_tokens, 0);
  EXPECT_EQ(r.summary.wasted_tokens, 0);
  EXPECT_EQ(r.summary.migrated_rows, r.migrated_rows);
  std::int64_t per_request_migrations = 0;
  for (const serve::RequestMetrics& m : r.requests) {
    per_request_migrations += m.migrations;
  }
  EXPECT_EQ(per_request_migrations, r.migrations_completed);
}

TEST(Migration, FaultedMigrationRunsAreByteIdentical) {
  // Stragglers drive the health score, link faults stretch the KV stream,
  // chips die mid-migration: two runs of it all are still byte-identical.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  serve::ClusterConfig cfg = tiny_cluster(3);
  cfg.fault_profile = degrading_profile(0.3, 0.2, 0.1);
  cfg.migration.enabled = true;
  cfg.degraded_after = 2;
  cfg.hedge_budget = sim::SimTime::from_ms(2.0);
  serve::ClusterRouter a(rt, cfg);
  serve::ClusterRouter b(rt, cfg);
  const serve::ClusterReport ra = a.run(stream);
  const std::string rb = b.run(stream).to_report();
  EXPECT_EQ(ra.to_report(), rb);
  EXPECT_GT(ra.migrations_started, 0);
}

TEST(Migration, KillAndMigrateResolvesEveryRequestAcrossSeeds) {
  // Chips die before, during, and after migrations; hedges race the lot.
  // Hammer fault seeds under a validating allocator: every request must
  // end in exactly one typed outcome and no KV block may leak or double.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16, 400.0));
  for (std::uint64_t fault_seed = 1; fault_seed <= 8; ++fault_seed) {
    serve::ClusterConfig cfg = tiny_cluster(3);
    cfg.fault_profile = degrading_profile(0.25, 0.15, 0.3);
    cfg.fault_seed = fault_seed;
    cfg.migration.enabled = true;
    cfg.degraded_after = 2;
    cfg.hedge_budget = sim::SimTime::from_ms(1.0);
    cfg.replica.retry_max = 4;
    cfg.breaker_min_samples = 2;
    cfg.breaker_window = 4;
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    EXPECT_EQ(outcome_total(r.summary), r.summary.offered)
        << "fault_seed " << fault_seed;
    EXPECT_EQ(r.migrations_started,
              r.migrations_completed + r.migrations_aborted)
        << "fault_seed " << fault_seed;
  }
  ::unsetenv("GAUDI_VALIDATE");
}

TEST(Migration, HedgeDuringMigrationKeepsExactlyOneCopy) {
  // Satellite: when a request is mid-migration as its hedge budget expires,
  // the router adopts the migration as the duplicate instead of launching a
  // second compute copy — one terminal outcome, no double-billed tokens.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::StreamConfig scfg = tiny_stream(12, 2000.0);
  scfg.output = {8, 12};
  const auto stream = serve::poisson_stream(scfg);
  for (const double hedge_ms : {0.5, 1.0, 2.0, 4.0}) {
    serve::ClusterConfig cfg = tiny_cluster(2);
    cfg.replica.kv_budget_bytes = 16384;
    cfg.migration.enabled = true;
    cfg.drain_replica = 0;
    cfg.drain_at = sim::SimTime::from_ms(2.0);
    cfg.hedge_budget = sim::SimTime::from_ms(hedge_ms);
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    EXPECT_EQ(outcome_total(r.summary), r.summary.offered)
        << "hedge_ms " << hedge_ms;
    EXPECT_EQ(r.summary.failed, 0) << "hedge_ms " << hedge_ms;
    for (const serve::RequestMetrics& m : r.requests) {
      if (m.outcome == serve::RequestOutcome::kCompleted) {
        // Output length is an exact function of the request: a double copy
        // would overshoot it through the shared metrics sink.
        EXPECT_GT(m.tokens_out, 0) << "request " << m.id;
      }
    }
  }
  ::unsetenv("GAUDI_VALIDATE");
}

TEST(Migration, BreakerDoesNotProbeADrainingReplica) {
  // Satellite: the half-open probe must not route work onto a replica being
  // evacuated, and completing a drain must not reset breaker counters.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16, 800.0));
  serve::ClusterConfig cfg = tiny_cluster(3);
  cfg.migration.enabled = true;
  cfg.drain_replica = 2;
  cfg.drain_at = sim::SimTime::zero();
  cfg.breaker_min_samples = 1;
  cfg.breaker_window = 2;
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  // Draining from t=0: replica 2 never receives a dispatch — not even a
  // breaker probe — yet the drain completes and nothing fails.
  EXPECT_EQ(r.per_replica[2].dispatched, 0);
  EXPECT_EQ(r.summary.failed, 0);
  EXPECT_TRUE(r.drain_completed);
  EXPECT_EQ(r.summary.completed, r.summary.offered);
}

TEST(Migration, DrainDoesNotResetBreakerCounters) {
  // Satellite: a drain is an evacuation, not an absolution.  Replica 0's
  // breaker opens under chip-failure flapping before the drain lands; the
  // final report must still carry that open — a drain that zeroed the
  // outcome window would erase it.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  serve::ClusterConfig cfg = tiny_cluster(3);
  cfg.fault_profile = chip_killer_profile(0.5);
  cfg.replica.retry_max = 6;
  cfg.breaker_min_samples = 2;
  cfg.breaker_window = 4;
  cfg.migration.enabled = true;
  cfg.drain_replica = 0;
  cfg.drain_at = sim::SimTime::from_ms(20.0);
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  EXPECT_TRUE(r.drain_completed);
  EXPECT_GT(r.per_replica[0].breaker_opens, 0);
  std::int64_t per_replica_opens = 0;
  for (const serve::ReplicaStats& s : r.per_replica) {
    per_replica_opens += s.breaker_opens;
  }
  EXPECT_EQ(per_replica_opens, r.breaker_opens);
  EXPECT_EQ(outcome_total(r.summary), r.summary.offered);
}

TEST(Migration, RejectsBadConfigs) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  {
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.migration.enabled = true;
    cfg.migration.chunk_blocks = 0;
    try {
      serve::ClusterRouter router(rt, cfg);
      FAIL() << "expected InvalidArgument";
    } catch (const sim::InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("chunk_blocks"),
                std::string::npos);
    }
  }
  {
    serve::ClusterConfig cfg = tiny_cluster(2);
    cfg.drain_replica = 2;  // out of range
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster(1);
    cfg.drain_replica = 0;  // nowhere to move the work
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster(2);
    cfg.drain_replica = 0;
    cfg.drain_at = sim::SimTime::from_ms(-1.0);
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster(2);
    cfg.migration.enabled = true;
    cfg.health_window = sim::SimTime::zero();
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster(2);
    cfg.migration.enabled = true;
    cfg.degraded_after = 0;
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
}

TEST(RetryBackoff, DoublesPerAttemptAndSaturatesAtTheCap) {
  const sim::SimTime base = sim::SimTime::from_ms(5.0);
  const sim::SimTime cap = sim::SimTime::from_ms(40.0);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 1), base);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 2), base * 2);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 3), base * 4);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 4), cap);  // 40 caps 40
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 5), cap);
  // Attempt counts far past the shift width must not overflow: still cap.
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 63), cap);
  EXPECT_THROW((void)serve::retry_backoff_delay(base, cap, 0),
               sim::InternalError);
}

// ------------------------------------------------------------- CLI surface

int run(std::initializer_list<const char*> args, std::string* out = nullptr) {
  std::vector<std::string> v{"gaudisim_cli"};
  v.insert(v.end(), args.begin(), args.end());
  std::ostringstream os;
  const int rc = core::run_cli(v, os);
  if (out) *out = os.str();
  return rc;
}

TEST(CliServeCluster, SmokeRunIsDeterministic) {
  std::string a;
  std::string b;
  const std::initializer_list<const char*> cmd = {
      "serve-cluster", "--requests",    "8",  "--rate",    "40",
      "--replicas",    "3",             "--faults",        "--mtbf",
      "30",            "--timing-only", "on", "--hedge-ms", "6"};
  ASSERT_EQ(run(cmd, &a), 0);
  ASSERT_EQ(run(cmd, &b), 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("cluster:"), std::string::npos);
  EXPECT_NE(a.find("replica 2:"), std::string::npos);
}

TEST(CliServeCluster, ValidatesItsFlags) {
  std::string out;
  EXPECT_EQ(run({"serve-cluster", "--replicas", "0"}, &out), 1);
  EXPECT_NE(out.find("--replicas"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--lb", "fastest"}, &out), 1);
  EXPECT_NE(out.find("fastest"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--suspicion-ms", "0"}, &out), 1);
  EXPECT_NE(out.find("--suspicion-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--hedge-ms", "-1"}, &out), 1);
  EXPECT_NE(out.find("--hedge-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--breaker-threshold", "2"}, &out), 1);
  EXPECT_NE(out.find("--breaker-threshold"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--breaker-cooldown-ms", "0"}, &out), 1);
  EXPECT_NE(out.find("--breaker-cooldown-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--retry-backoff-max-ms", "0"}, &out), 1);
  EXPECT_NE(out.find("--retry-backoff-max-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--nonsense", "1"}, &out), 1);
  // Satellite: every migration/drain flag rejects bad values by name.
  EXPECT_EQ(run({"serve-cluster", "--migration-chunk-blocks", "0"}, &out), 1);
  EXPECT_NE(out.find("--migration-chunk-blocks"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--replicas", "1", "--drain-replica", "0"},
                &out),
            1);
  EXPECT_NE(out.find("--drain-replica"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--replicas", "3", "--drain-replica", "3"},
                &out),
            1);
  EXPECT_NE(out.find("--drain-replica"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--drain-at-ms", "5"}, &out), 1);
  EXPECT_NE(out.find("--drain-at-ms requires --drain-replica"),
            std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--replicas", "2", "--drain-replica", "0",
                 "--drain-at-ms", "-1"},
                &out),
            1);
  EXPECT_NE(out.find("--drain-at-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--migrate", "--health-window-ms", "0"},
                &out),
            1);
  EXPECT_NE(out.find("--health-window-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--migrate", "--degraded-after", "0"}, &out),
            1);
  EXPECT_NE(out.find("--degraded-after"), std::string::npos);
}

TEST(CliServeCluster, MigrationSmokeRunIsDeterministic) {
  std::string a;
  std::string b;
  const std::initializer_list<const char*> cmd = {
      "serve-cluster", "--requests", "12",          "--rate",
      "60",            "--replicas", "3",           "--faults",
      "--mtbf",        "30",         "--migrate",   "--timing-only",
      "on",            "--hedge-ms", "6"};
  ASSERT_EQ(run(cmd, &a), 0);
  ASSERT_EQ(run(cmd, &b), 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("migrate:"), std::string::npos);
  EXPECT_NE(a.find("migrated in"), std::string::npos);
}

TEST(CliServeCluster, DrainQuickstartDrainsCleanly) {
  // The README quickstart: drain replica 0 twenty simulated ms in, with
  // live migration carrying its KV to the survivors — the migrate line
  // must show actual rows on the wire, not a trivially empty drain.
  std::string out;
  ASSERT_EQ(run({"serve-cluster", "--requests", "24", "--rate", "120",
                 "--replicas", "3", "--migrate", "--drain-replica", "0",
                 "--drain-at-ms", "20", "--timing-only", "on"},
                &out),
            0);
  EXPECT_NE(out.find("drain:    replica 0 drained cleanly"),
            std::string::npos);
  EXPECT_NE(out.find(" 0 failed"), std::string::npos);
  EXPECT_EQ(out.find("migrate:  0 started"), std::string::npos);
}

}  // namespace
}  // namespace gaudi

// Multi-replica serving cluster: failure detection, failover with KV
// re-prefill, hedged requests, and circuit breaking.
//
// The contracts under test mirror the single-replica scheduler's: every
// offered request ends in exactly one typed outcome, same seed means
// byte-identical reports, and a cluster whose injector is disabled is
// byte-identical to a fault-free configuration.  On top of those, the
// fleet-level claims: N >= 2 replicas beat one replica's availability under
// the same per-replica fault stream, hedges race and cancel losers, and a
// flapping replica's breaker opens.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "graph/runtime.hpp"
#include "nn/decode.hpp"
#include "serve/cluster.hpp"
#include "serve/workload.hpp"
#include "sim/error.hpp"
#include "sim/fault.hpp"

namespace gaudi {
namespace {

serve::StreamConfig tiny_stream(std::int64_t n = 12, double rate = 200.0) {
  serve::StreamConfig cfg;
  cfg.arrival_rate_rps = rate;
  cfg.num_requests = n;
  cfg.prompt = {2, 4};
  cfg.output = {2, 3};
  cfg.seed = 0xBEEF;
  return cfg;
}

serve::ClusterConfig tiny_cluster(std::int64_t replicas = 2) {
  serve::ClusterConfig cfg;
  cfg.replica.model = nn::DecodeConfig::tiny();
  cfg.replica.max_batch = 2;
  cfg.replica.prefill_chunk = 4;
  cfg.replica.ctx_bucket = 4;
  cfg.replica.block_tokens = 4;
  cfg.replica.kv_budget_bytes = 4096;  // 8 blocks of 4 tokens
  cfg.replica.timing_only = true;
  cfg.replicas = replicas;
  return cfg;
}

sim::FaultProfile chip_killer_profile(double rate) {
  sim::FaultProfile p;
  p.chip_failure_rate = rate;
  return p;
}

/// Sums the per-outcome counters; every offered request must land in
/// exactly one of them.
std::int64_t outcome_total(const serve::ServeSummary& s) {
  return s.completed + s.rejected + s.dropped + s.shed + s.timed_out +
         s.failed;
}

TEST(Cluster, SameSeedRunsAreByteIdentical) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  serve::ClusterConfig cfg = tiny_cluster(3);
  cfg.fault_profile = chip_killer_profile(0.1);
  cfg.hedge_budget = sim::SimTime::from_ms(2.0);
  serve::ClusterRouter a(rt, cfg);
  serve::ClusterRouter b(rt, cfg);
  const std::string ra = a.run(stream).to_report();
  const std::string rb = b.run(stream).to_report();
  EXPECT_EQ(ra, rb);
  EXPECT_NE(ra.find("cluster:"), std::string::npos);
}

TEST(Cluster, DisabledInjectorMatchesFaultFreeConfig) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  // Fault-free config vs a config whose injector exists but is disabled
  // (all rates zero) under a different seed: the seed must be unreachable.
  serve::ClusterConfig fault_free = tiny_cluster(3);
  serve::ClusterConfig disabled = tiny_cluster(3);
  disabled.fault_profile = sim::FaultProfile::disabled();
  disabled.fault_seed = 0xDEAD;
  serve::ClusterRouter a(rt, fault_free);
  serve::ClusterRouter b(rt, disabled);
  const serve::ClusterReport ra = a.run(stream);
  const serve::ClusterReport rb = b.run(stream);
  EXPECT_FALSE(ra.faults_enabled);
  EXPECT_FALSE(rb.faults_enabled);
  EXPECT_EQ(ra.to_report(), rb.to_report());
  EXPECT_EQ(ra.chip_failures, 0);
  EXPECT_EQ(ra.summary.completed, ra.summary.offered);
}

TEST(Cluster, FailoverCompletesOrTypesEveryRequest) {
  // Aggressive chip loss at N=2 with a validating allocator: requests fail
  // over with a full re-prefill and every one of them ends in exactly one
  // typed outcome.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  serve::ClusterConfig cfg = tiny_cluster(2);
  cfg.fault_profile = chip_killer_profile(0.25);
  cfg.replica.retry_max = 4;
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  ::unsetenv("GAUDI_VALIDATE");

  EXPECT_EQ(r.summary.offered, 16);
  EXPECT_EQ(outcome_total(r.summary), r.summary.offered);
  EXPECT_GT(r.chip_failures, 0);
  EXPECT_GT(r.failovers, 0);
  // Failed-over work re-prefills from scratch: the thrown-away rows are
  // accounted as wasted.
  EXPECT_GT(r.summary.wasted_tokens, 0);
  for (const serve::RequestMetrics& m : r.requests) {
    if (m.outcome == serve::RequestOutcome::kCompleted) {
      EXPECT_GT(m.tokens_out, 0) << "request " << m.id;
    }
  }
}

TEST(Cluster, ReplicasBeatSingleReplicaAvailabilityUnderFaults) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  auto availability = [&](std::int64_t replicas) {
    serve::ClusterConfig cfg = tiny_cluster(replicas);
    cfg.fault_profile = chip_killer_profile(0.3);
    cfg.replica.retry_max = 1;
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    return r.summary.availability;
  };
  const double one = availability(1);
  const double three = availability(3);
  EXPECT_LT(one, 1.0);
  EXPECT_GT(three, one);
}

TEST(Cluster, HedgeRacesAndCancelsTheLoser) {
  // One batch slot per replica and a burst of simultaneous arrivals: the
  // primary queues behind its replica's backlog, the duplicate lands on a
  // less-loaded replica and wins the race; the loser's rows are wasted.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(12, 2000.0));
  serve::ClusterConfig cfg = tiny_cluster(2);
  cfg.replica.max_batch = 1;
  cfg.hedge_budget = sim::SimTime::from_ms(1.0);
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  EXPECT_TRUE(r.hedging_enabled);
  EXPECT_GT(r.hedges_launched, 0);
  EXPECT_EQ(outcome_total(r.summary), r.summary.offered);
  EXPECT_EQ(r.summary.completed, r.summary.offered);
  // The duplicate's report line renders only when hedging is on.
  EXPECT_NE(r.to_report().find("hedges:"), std::string::npos);
}

TEST(Cluster, HedgeWinnerFailoverChainResolvesEveryRequest) {
  // Regression: a hedge wins, the winning replica dies (the request fails
  // over and re-dispatches under its original id), then the re-dispatched
  // side's replica dies too.  The resume must read as the last live
  // carrier — not as the dead winner's leftover twin — or the track leaks
  // and the router stalls with no future event.  Hammer the interaction
  // across fault seeds; every request must still end in one typed outcome.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16, 400.0));
  for (std::uint64_t fault_seed = 1; fault_seed <= 8; ++fault_seed) {
    serve::ClusterConfig cfg = tiny_cluster(3);
    cfg.fault_profile = chip_killer_profile(0.35);
    cfg.fault_seed = fault_seed;
    cfg.hedge_budget = sim::SimTime::from_ms(1.0);
    cfg.replica.retry_max = 4;
    cfg.breaker_min_samples = 2;
    cfg.breaker_window = 4;
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    EXPECT_EQ(outcome_total(r.summary), r.summary.offered)
        << "fault_seed " << fault_seed;
  }
  ::unsetenv("GAUDI_VALIDATE");
}

TEST(Cluster, BreakerOpensOnFlappingReplicaAndRunStillEnds) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(16));
  serve::ClusterConfig cfg = tiny_cluster(2);
  cfg.fault_profile = chip_killer_profile(0.5);
  cfg.replica.retry_max = 6;
  cfg.breaker_min_samples = 2;
  cfg.breaker_window = 4;
  serve::ClusterRouter router(rt, cfg);
  const serve::ClusterReport r = router.run(stream);
  EXPECT_GT(r.breaker_opens, 0);
  EXPECT_EQ(outcome_total(r.summary), r.summary.offered);
  std::int64_t per_replica_opens = 0;
  for (const serve::ReplicaStats& s : r.per_replica) {
    per_replica_opens += s.breaker_opens;
  }
  EXPECT_EQ(per_replica_opens, r.breaker_opens);
}

TEST(Cluster, LoadBalancePoliciesSpreadAndParse) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream(12));
  for (const serve::LoadBalancePolicy policy :
       {serve::LoadBalancePolicy::kRoundRobin,
        serve::LoadBalancePolicy::kJoinShortestQueue,
        serve::LoadBalancePolicy::kLeastKvLoad}) {
    serve::ClusterConfig cfg = tiny_cluster(3);
    cfg.policy = policy;
    serve::ClusterRouter router(rt, cfg);
    const serve::ClusterReport r = router.run(stream);
    EXPECT_EQ(r.summary.completed, 12) << serve::load_balance_policy_name(policy);
    // Fault-free with every policy: nobody starves, at least two replicas
    // see work (12 requests over 3 replicas).
    std::int64_t busy_replicas = 0;
    for (const serve::ReplicaStats& s : r.per_replica) {
      busy_replicas += s.dispatched > 0 ? 1 : 0;
    }
    EXPECT_GE(busy_replicas, 2) << serve::load_balance_policy_name(policy);
    EXPECT_EQ(serve::parse_load_balance_policy(
                  serve::load_balance_policy_name(policy)),
              policy);
  }
  EXPECT_THROW((void)serve::parse_load_balance_policy("fastest"),
               sim::InvalidArgument);
}

TEST(Cluster, RejectsBadConfigs) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  {
    serve::ClusterConfig cfg = tiny_cluster(0);
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.suspicion_timeout = sim::SimTime::zero();
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.breaker_threshold = 1.5;
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.breaker_min_samples = 9;  // > breaker_window of 8
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    // Replica-level injectors are the cluster's job: a pre-wired one is a
    // config error, not silently doubled fault exposure.
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.replica.faults =
        sim::FaultInjector{0x5EED, chip_killer_profile(0.1)};
    EXPECT_THROW(serve::ClusterRouter(rt, cfg), sim::InvalidArgument);
  }
  {
    // Satellite: non-positive backoff cap is a named InvalidArgument.
    serve::ClusterConfig cfg = tiny_cluster();
    cfg.replica.retry_backoff_max = sim::SimTime::zero();
    try {
      serve::ClusterRouter router(rt, cfg);
      FAIL() << "expected InvalidArgument";
    } catch (const sim::InvalidArgument& e) {
      EXPECT_NE(std::string(e.what()).find("retry_backoff_max"),
                std::string::npos);
    }
  }
}

TEST(RetryBackoff, DoublesPerAttemptAndSaturatesAtTheCap) {
  const sim::SimTime base = sim::SimTime::from_ms(5.0);
  const sim::SimTime cap = sim::SimTime::from_ms(40.0);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 1), base);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 2), base * 2);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 3), base * 4);
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 4), cap);  // 40 caps 40
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 5), cap);
  // Attempt counts far past the shift width must not overflow: still cap.
  EXPECT_EQ(serve::retry_backoff_delay(base, cap, 63), cap);
  EXPECT_THROW((void)serve::retry_backoff_delay(base, cap, 0),
               sim::InternalError);
}

// ------------------------------------------------------------- CLI surface

int run(std::initializer_list<const char*> args, std::string* out = nullptr) {
  std::vector<std::string> v{"gaudisim_cli"};
  v.insert(v.end(), args.begin(), args.end());
  std::ostringstream os;
  const int rc = core::run_cli(v, os);
  if (out) *out = os.str();
  return rc;
}

TEST(CliServeCluster, SmokeRunIsDeterministic) {
  std::string a;
  std::string b;
  const std::initializer_list<const char*> cmd = {
      "serve-cluster", "--requests",    "8",  "--rate",    "40",
      "--replicas",    "3",             "--faults",        "--mtbf",
      "30",            "--timing-only", "on", "--hedge-ms", "6"};
  ASSERT_EQ(run(cmd, &a), 0);
  ASSERT_EQ(run(cmd, &b), 0);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("cluster:"), std::string::npos);
  EXPECT_NE(a.find("replica 2:"), std::string::npos);
}

TEST(CliServeCluster, ValidatesItsFlags) {
  std::string out;
  EXPECT_EQ(run({"serve-cluster", "--replicas", "0"}, &out), 1);
  EXPECT_NE(out.find("--replicas"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--lb", "fastest"}, &out), 1);
  EXPECT_NE(out.find("fastest"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--suspicion-ms", "0"}, &out), 1);
  EXPECT_NE(out.find("--suspicion-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--hedge-ms", "-1"}, &out), 1);
  EXPECT_NE(out.find("--hedge-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--breaker-threshold", "2"}, &out), 1);
  EXPECT_NE(out.find("--breaker-threshold"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--breaker-cooldown-ms", "0"}, &out), 1);
  EXPECT_NE(out.find("--breaker-cooldown-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--retry-backoff-max-ms", "0"}, &out), 1);
  EXPECT_NE(out.find("--retry-backoff-max-ms"), std::string::npos);
  EXPECT_EQ(run({"serve-cluster", "--nonsense", "1"}, &out), 1);
}

}  // namespace
}  // namespace gaudi

// Live KV migration primitives (serve/migration.*): transfer planning over
// the RoCE cost model with counter-keyed link faults, and the sliding-window
// replica health score.
//
// The contracts: a plan is a pure function of (config, seed, transfer_seq,
// payload) — re-planning returns identical bytes; a disabled injector yields
// the clean chunked p2p time exactly; injected link faults only ever ADD
// time (retry backoff, degraded pacing), never lose payload ("transient
// means transient"); and the health verdict is a pure function of (recorded
// events, now) with no hidden decay state.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "scaleout/roce.hpp"
#include "serve/migration.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace gaudi {
namespace {

using sim::SimTime;

serve::MigrationConfig mig_config(std::int64_t chunk_blocks = 4) {
  serve::MigrationConfig cfg;
  cfg.enabled = true;
  cfg.chunk_blocks = chunk_blocks;
  return cfg;
}

sim::FaultProfile link_dropper(double transient, double degradation = 0.0) {
  sim::FaultProfile p;
  p.transient_link_rate = transient;
  p.link_degradation_rate = degradation;
  return p;
}

TEST(MigrationPlan, CleanLinkMatchesChunkedP2pTimeExactly) {
  const serve::MigrationConfig cfg = mig_config(/*chunk_blocks=*/2);
  const sim::FaultInjector no_faults{};  // disabled: never fires
  // 10 rows in 4-token blocks -> 3 blocks -> 2 chunks (2 + 1 blocks).
  const serve::TransferPlan plan =
      serve::plan_kv_transfer(cfg, no_faults, /*transfer_seq=*/0, /*rows=*/10,
                              /*block_tokens=*/4, /*bytes_per_token=*/256);
  EXPECT_EQ(plan.blocks, 3);
  EXPECT_EQ(plan.chunks, 2);
  EXPECT_EQ(plan.link_retries, 0);
  EXPECT_EQ(plan.degraded_chunks, 0);
  // Whole paged blocks ride the wire: 2 blocks * 4 tokens, then 1 block.
  const SimTime expected = scaleout::p2p_time(cfg.roce, 2 * 4 * 256) +
                           scaleout::p2p_time(cfg.roce, 1 * 4 * 256);
  EXPECT_EQ(plan.duration, expected);
}

TEST(MigrationPlan, EmptyPayloadIsFree) {
  const serve::MigrationConfig cfg = mig_config();
  const sim::FaultInjector no_faults{};
  const serve::TransferPlan plan =
      serve::plan_kv_transfer(cfg, no_faults, 0, /*rows=*/0, 4, 256);
  EXPECT_EQ(plan.duration, SimTime::zero());
  EXPECT_EQ(plan.blocks, 0);
  EXPECT_EQ(plan.chunks, 0);
}

TEST(MigrationPlan, IsAPureFunctionOfItsInputs) {
  const serve::MigrationConfig cfg = mig_config();
  const sim::FaultInjector faults{0x5EED, link_dropper(0.3, 0.2)};
  const serve::TransferPlan a =
      serve::plan_kv_transfer(cfg, faults, /*transfer_seq=*/7, 64, 4, 512);
  const serve::TransferPlan b =
      serve::plan_kv_transfer(cfg, faults, /*transfer_seq=*/7, 64, 4, 512);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.link_retries, b.link_retries);
  EXPECT_EQ(a.degraded_chunks, b.degraded_chunks);
  // A different transfer sequence draws an independent fault schedule.
  const serve::TransferPlan c =
      serve::plan_kv_transfer(cfg, faults, /*transfer_seq=*/8, 64, 4, 512);
  EXPECT_EQ(c.blocks, a.blocks);  // payload identical either way
}

TEST(MigrationPlan, LinkFaultsAddTimeButNeverLosePayload) {
  const serve::MigrationConfig cfg = mig_config(/*chunk_blocks=*/1);
  const sim::FaultInjector no_faults{};
  const sim::FaultInjector faulty{0x5EED, link_dropper(1.0, 1.0)};
  const serve::TransferPlan clean =
      serve::plan_kv_transfer(cfg, no_faults, 3, 32, 4, 512);
  const serve::TransferPlan stormy =
      serve::plan_kv_transfer(cfg, faulty, 3, 32, 4, 512);
  // Certain transient drops: every chunk retries max_attempts - 1 times and
  // the last attempt is forced through; a degraded link paces every chunk.
  EXPECT_EQ(stormy.blocks, clean.blocks);
  EXPECT_EQ(stormy.chunks, clean.chunks);
  EXPECT_EQ(stormy.link_retries,
            clean.chunks *
                static_cast<std::int64_t>(cfg.retry.max_attempts - 1));
  EXPECT_EQ(stormy.degraded_chunks, stormy.chunks);
  EXPECT_GT(stormy.duration, clean.duration);
}

TEST(MigrationPlan, TailBlockStreamsAsAWholeBlock) {
  // 5 rows in 4-token blocks is 2 blocks on the wire — the partially filled
  // tail block streams whole, exactly like the paged allocator stores it.
  const serve::MigrationConfig cfg = mig_config(/*chunk_blocks=*/8);
  const sim::FaultInjector no_faults{};
  const serve::TransferPlan plan =
      serve::plan_kv_transfer(cfg, no_faults, 0, /*rows=*/5, 4, 100);
  EXPECT_EQ(plan.blocks, 2);
  EXPECT_EQ(plan.chunks, 1);
  EXPECT_EQ(plan.duration, scaleout::p2p_time(cfg.roce, 2 * 4 * 100));
}

TEST(HealthTracker, DegradesAtThresholdAndRecoversByDecay) {
  serve::HealthTracker h{SimTime::from_ms(10.0), /*degraded_after=*/3};
  const SimTime t0 = SimTime::from_ms(100.0);
  EXPECT_FALSE(h.degraded(t0));
  h.record(t0);
  h.record(t0 + SimTime::from_ms(1.0));
  EXPECT_EQ(h.score(t0 + SimTime::from_ms(1.0)), 2);
  EXPECT_FALSE(h.degraded(t0 + SimTime::from_ms(1.0)));
  h.record(t0 + SimTime::from_ms(2.0));
  EXPECT_TRUE(h.degraded(t0 + SimTime::from_ms(2.0)));
  // The first event ages out 10 ms after it was recorded: score drops to 2
  // and the verdict flips back with no explicit reset.
  EXPECT_TRUE(h.degraded(t0 + SimTime::from_ms(9.9)));
  EXPECT_FALSE(h.degraded(t0 + SimTime::from_ms(10.0)));
  EXPECT_EQ(h.score(t0 + SimTime::from_ms(11.5)), 1);
}

TEST(HealthTracker, NextDecayReportsTheEarliestAgeOut) {
  serve::HealthTracker h{SimTime::from_ms(10.0), 2};
  const SimTime t0 = SimTime::from_ms(50.0);
  EXPECT_FALSE(h.next_decay(t0).has_value());
  h.record(t0);
  h.record(t0 + SimTime::from_ms(4.0));
  const auto decay = h.next_decay(t0 + SimTime::from_ms(5.0));
  ASSERT_TRUE(decay.has_value());
  EXPECT_EQ(*decay, t0 + SimTime::from_ms(10.0));
  // Past the last age-out there is nothing left to wait for.
  EXPECT_FALSE(h.next_decay(t0 + SimTime::from_ms(20.0)).has_value());
}

TEST(HealthTracker, DefaultConstructedNeverDegrades) {
  serve::HealthTracker h;
  h.record(SimTime::from_ms(1.0));
  EXPECT_FALSE(h.degraded(SimTime::from_ms(1.0)));
}

TEST(ReplicaHealth, NamesRoundTrip) {
  EXPECT_EQ(std::string(serve::replica_health_name(
                serve::ReplicaHealth::kHealthy)),
            "healthy");
  EXPECT_EQ(std::string(serve::replica_health_name(
                serve::ReplicaHealth::kDegraded)),
            "degraded");
  EXPECT_EQ(std::string(serve::replica_health_name(
                serve::ReplicaHealth::kDraining)),
            "draining");
  EXPECT_EQ(
      std::string(serve::replica_health_name(serve::ReplicaHealth::kDead)),
      "dead");
}

}  // namespace
}  // namespace gaudi

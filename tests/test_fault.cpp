// Fault-injection and resilience tests: env-variable parsing, seeded fault
// determinism, retry/backoff and elastic ring re-formation, checkpoint
// rollback accounting, and the zero-overhead guarantee of the disabled path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "graph/random_graph.hpp"
#include "graph/runtime.hpp"
#include "graph/validate.hpp"
#include "scaleout/checkpoint.hpp"
#include "scaleout/resilience.hpp"
#include "sim/env.hpp"
#include "tensor/ops.hpp"

namespace gaudi::scaleout {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Environment-variable parsing (sim/env.hpp)
// ---------------------------------------------------------------------------

TEST(EnvParse, ClassifiesTheBooleanGrammar) {
  using sim::EnvFlag;
  EXPECT_EQ(sim::classify_env_flag(nullptr), EnvFlag::kUnset);
  for (const char* v : {"", "0", "false", "FALSE", "off", "Off", "no"}) {
    EXPECT_EQ(sim::classify_env_flag(v), EnvFlag::kOff) << "'" << v << "'";
  }
  for (const char* v : {"1", "true", "True", "on", "ON", "yes", "YES"}) {
    EXPECT_EQ(sim::classify_env_flag(v), EnvFlag::kOn) << "'" << v << "'";
  }
  for (const char* v : {"2", "yep", "enable", " 1", "1 ", "tru"}) {
    EXPECT_EQ(sim::classify_env_flag(v), EnvFlag::kUnrecognized)
        << "'" << v << "'";
  }
}

TEST(EnvParse, FlagMapsRecognizedValuesAndFallsBackOnGarbage) {
  // Fresh variable names per case: the warn-once latch is per variable.
  ::setenv("GAUDI_TEST_FLAG_ON", "yes", 1);
  EXPECT_TRUE(sim::env_flag("GAUDI_TEST_FLAG_ON", false));
  ::setenv("GAUDI_TEST_FLAG_OFF", "0", 1);
  EXPECT_FALSE(sim::env_flag("GAUDI_TEST_FLAG_OFF", true));
  EXPECT_FALSE(sim::env_flag("GAUDI_TEST_FLAG_UNSET_XYZ", true));
  // An unrecognized value yields the caller's fallback, not a coercion.
  ::setenv("GAUDI_TEST_FLAG_BAD", "banana", 1);
  EXPECT_TRUE(sim::env_flag("GAUDI_TEST_FLAG_BAD", true));
  ::setenv("GAUDI_TEST_FLAG_BAD2", "banana", 1);
  EXPECT_FALSE(sim::env_flag("GAUDI_TEST_FLAG_BAD2", false));
}

TEST(EnvParse, U64ParsesDigitsAndFallsBackOnGarbage) {
  ::setenv("GAUDI_TEST_U64_OK", "123456", 1);
  EXPECT_EQ(sim::env_u64("GAUDI_TEST_U64_OK", 7), 123456u);
  ::setenv("GAUDI_TEST_U64_HEX", "0xFA517", 1);
  EXPECT_EQ(sim::env_u64("GAUDI_TEST_U64_HEX", 7), 0xFA517u);
  EXPECT_EQ(sim::env_u64("GAUDI_TEST_U64_UNSET_XYZ", 7), 7u);
  ::setenv("GAUDI_TEST_U64_BAD", "12abc", 1);
  EXPECT_EQ(sim::env_u64("GAUDI_TEST_U64_BAD", 7), 7u);
  ::setenv("GAUDI_TEST_U64_EMPTY", "", 1);
  EXPECT_EQ(sim::env_u64("GAUDI_TEST_U64_EMPTY", 7), 7u);
}

// ---------------------------------------------------------------------------
// FaultInjector determinism
// ---------------------------------------------------------------------------

TEST(FaultInjector, DisabledInjectorNeverFires) {
  const sim::FaultInjector off;
  EXPECT_FALSE(off.enabled());
  for (std::uint64_t s = 0; s < 1000; ++s) {
    for (std::size_t k = 0; k < sim::kFaultKindCount; ++k) {
      EXPECT_FALSE(off.fires(static_cast<sim::FaultKind>(k), s));
    }
  }
  EXPECT_TRUE(sim::fault_schedule(off, 100, 8).empty());
}

TEST(FaultInjector, SameSeedReproducesTheScheduleByteForByte) {
  const sim::FaultProfile profile = sim::FaultProfile::from_mtbf_steps(50.0, 8);
  const sim::FaultInjector a{42, profile};
  const sim::FaultInjector b{42, profile};
  const std::string sa = sim::to_string(sim::fault_schedule(a, 500, 8));
  EXPECT_EQ(sa, sim::to_string(sim::fault_schedule(b, 500, 8)));
  EXPECT_FALSE(sim::fault_schedule(a, 500, 8).empty())
      << "MTBF 50 over 500 steps must fire something";

  const sim::FaultInjector c{43, profile};
  EXPECT_NE(sa, sim::to_string(sim::fault_schedule(c, 500, 8)));
}

TEST(FaultInjector, QueriesArePureFunctionsOfSite) {
  // Stateless oracle: re-querying a site any number of times, in any order,
  // gives the same answer (no generator state to perturb).
  const sim::FaultInjector inj{7, sim::FaultProfile::stress()};
  const std::uint64_t site = sim::FaultInjector::site(13, 5);
  const bool first = inj.fires(sim::FaultKind::kDmaTimeout, site);
  for (int i = 0; i < 10; ++i) {
    (void)inj.fires(sim::FaultKind::kTpcStraggler, i);  // interleaved queries
    EXPECT_EQ(inj.fires(sim::FaultKind::kDmaTimeout, site), first);
  }
}

TEST(FaultInjector, MtbfProfileRatesAreOrderedAndPositive) {
  const sim::FaultProfile p = sim::FaultProfile::from_mtbf_steps(100.0, 8);
  EXPECT_TRUE(p.any_rate_positive());
  EXPECT_GT(p.chip_failure_rate, 0.0);
  // Transient link errors are far more common than chip deaths.
  EXPECT_GT(p.transient_link_rate, p.chip_failure_rate);
  EXPECT_FALSE(sim::FaultProfile::disabled().any_rate_positive());
  EXPECT_EQ(p.rate(sim::FaultKind::kChipFailure), p.chip_failure_rate);
  EXPECT_EQ(p.rate(sim::FaultKind::kTransientLink), p.transient_link_rate);
}

// ---------------------------------------------------------------------------
// Resilient ring all-reduce
// ---------------------------------------------------------------------------

TEST(ResilientAllReduce, DisabledInjectorMatchesBaselineExactly) {
  const ResilienceConfig cfg;
  const sim::FaultInjector off;
  for (const std::uint32_t chips : {1u, 2u, 5u, 8u}) {
    for (const std::size_t bytes : {std::size_t{0}, std::size_t{4096},
                                    std::size_t{1} << 26}) {
      const auto r =
          resilient_ring_all_reduce_time(cfg, off, /*step=*/3, bytes, chips);
      const auto base = ring_all_reduce_time(cfg.roce, bytes, chips);
      EXPECT_EQ(r.duration, base.duration) << chips << " chips, " << bytes;
      EXPECT_EQ(r.exchange.duration, base.duration);
      EXPECT_EQ(r.surviving_chips, chips);
      EXPECT_TRUE(r.lost_chips.empty());
      EXPECT_EQ(r.faults.retries, 0u);
    }
  }
}

TEST(ResilientAllReduce, TransientFaultsRetryWithExponentialBackoff) {
  ResilienceConfig cfg;
  sim::FaultProfile profile;  // only transient errors, firing every attempt
  profile.transient_link_rate = 1.0;
  const sim::FaultInjector inj{1, profile};

  const std::uint32_t chips = 4;
  const auto r =
      resilient_ring_all_reduce_time(cfg, inj, /*step=*/0, 1 << 20, chips);
  // Every link burns max_attempts-1 failed attempts before the forced
  // success; links retry in parallel, so one worst-case chain is exposed.
  const std::uint32_t per_link = cfg.retry.max_attempts - 1;
  EXPECT_EQ(r.faults.retries, per_link * chips);
  EXPECT_EQ(r.faults.transient_faults, per_link * chips);
  sim::SimTime chain = sim::SimTime::zero();
  for (std::uint32_t a = 0; a < per_link; ++a) {
    chain += cfg.retry.detection_timeout + backoff_delay(cfg.retry, a);
  }
  EXPECT_EQ(r.faults.retry_overhead, chain);
  EXPECT_EQ(r.duration, r.exchange.duration + chain);
  EXPECT_EQ(r.surviving_chips, chips);
}

TEST(ResilientAllReduce, BackoffDelayGrowsExponentially) {
  const RetryPolicy p;
  EXPECT_EQ(backoff_delay(p, 0), p.base_backoff);
  EXPECT_EQ(backoff_delay(p, 1), p.base_backoff * 2);
  EXPECT_EQ(backoff_delay(p, 2), p.base_backoff * 4);
}

TEST(ResilientAllReduce, DegradedLinkPacesTheWholeExchange) {
  ResilienceConfig cfg;
  sim::FaultProfile profile;
  profile.link_degradation_rate = 1.0;  // every link degraded
  profile.degraded_bandwidth_factor = 0.5;
  const sim::FaultInjector inj{1, profile};

  const auto r =
      resilient_ring_all_reduce_time(cfg, inj, /*step=*/0, 1 << 24, 8);
  EXPECT_EQ(r.faults.degraded_links, 8u);
  EXPECT_GT(r.duration, r.exchange.duration);
  EXPECT_EQ(r.duration, r.exchange.duration + r.faults.degradation_overhead);
  // Half bandwidth ~ doubled per-step time (latency is unchanged, so the
  // stretch is slightly above 2x of the bandwidth term alone).
  EXPECT_GE(r.faults.degradation_overhead.ps(),
            static_cast<std::int64_t>(0.9 * r.exchange.duration.ps()));
}

/// Finds a (seed-fixed) step where exactly `want` of `chips` chips fail.
std::uint64_t step_with_losses(const sim::FaultInjector& inj,
                               std::uint32_t chips, std::uint32_t want) {
  for (std::uint64_t step = 0; step < 10000; ++step) {
    std::uint32_t lost = 0;
    for (std::uint32_t c = 0; c < chips; ++c) {
      lost += inj.fires(sim::FaultKind::kChipFailure,
                        sim::FaultInjector::site(step, c));
    }
    if (lost == want) return step;
  }
  ADD_FAILURE() << "no step with " << want << " losses in 10000 steps";
  return 0;
}

TEST(ResilientAllReduce, ChipLossReformsTheRingWithExactSurvivorNumerics) {
  ResilienceConfig cfg;
  sim::FaultProfile profile;
  profile.chip_failure_rate = 0.15;
  const sim::FaultInjector inj{9, profile};
  const std::uint32_t chips = 6;
  const std::uint64_t step = step_with_losses(inj, chips, 1);

  // Integer-valued shards: any summation order is exact in f32.
  std::vector<Tensor> shards;
  for (std::uint32_t c = 0; c < chips; ++c) {
    shards.push_back(Tensor::full(Shape{{97}}, static_cast<float>(1u << c)));
  }
  auto r = resilient_ring_all_reduce(cfg, inj, step, shards, ReduceOp::kSum);

  ASSERT_EQ(r.lost_chips.size(), 1u);
  EXPECT_EQ(r.surviving_chips, chips - 1);
  EXPECT_EQ(r.faults.chips_lost, 1u);
  ASSERT_EQ(shards.size(), chips - 1);
  // P -> P-1: the survivors' reduction is the exact sum of the surviving
  // inputs — the dead chip's contribution is gone, nothing else changed.
  const float expect = static_cast<float>((1u << chips) - 1) -
                       static_cast<float>(1u << r.lost_chips[0]);
  for (const auto& s : shards) {
    for (float v : s.f32()) EXPECT_EQ(v, expect);
  }
  // Re-formation cost is charged once: detection + membership agreement.
  EXPECT_EQ(r.faults.reformation_overhead,
            cfg.retry.detection_timeout + cfg.reformation_latency);
  // The exchange the survivors run is the P-1 ring.
  EXPECT_EQ(r.exchange.steps, 2u * (chips - 2));
}

TEST(ResilientAllReduce, MeanAveragesOverSurvivors) {
  ResilienceConfig cfg;
  sim::FaultProfile profile;
  profile.chip_failure_rate = 0.15;
  const sim::FaultInjector inj{9, profile};
  const std::uint32_t chips = 4;
  const std::uint64_t step = step_with_losses(inj, chips, 1);

  std::vector<Tensor> shards;
  for (std::uint32_t c = 0; c < chips; ++c) {
    shards.push_back(Tensor::full(Shape{{16}}, static_cast<float>(c + 1)));
  }
  std::vector<float> values{1.0f, 2.0f, 3.0f, 4.0f};
  auto r = resilient_ring_all_reduce(cfg, inj, step, shards, ReduceOp::kMean);
  ASSERT_EQ(r.lost_chips.size(), 1u);
  values.erase(values.begin() + r.lost_chips[0]);
  const float expect = (values[0] + values[1] + values[2]) / 3.0f;
  for (const auto& s : shards) {
    for (float v : s.f32()) EXPECT_NEAR(v, expect, 1e-6f);
  }
}

TEST(ResilientAllReduce, AllChipsLostThrowsResourceExhausted) {
  ResilienceConfig cfg;
  sim::FaultProfile profile;
  profile.chip_failure_rate = 1.0;
  const sim::FaultInjector inj{1, profile};
  EXPECT_THROW(resilient_ring_all_reduce_time(cfg, inj, 0, 1 << 20, 8),
               sim::ResourceExhausted);
}

TEST(ResilientAllReduce, RejectsBadShardVectors) {
  const ResilienceConfig cfg;
  const sim::FaultInjector off;
  std::vector<Tensor> empty;
  EXPECT_THROW(resilient_ring_all_reduce(cfg, off, 0, empty),
               sim::InvalidArgument);
  std::vector<Tensor> mismatched{Tensor::zeros(Shape{{2, 3}}),
                                 Tensor::zeros(Shape{{3, 2}})};
  EXPECT_THROW(resilient_ring_all_reduce(cfg, off, 0, mismatched),
               sim::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Resilient data-parallel / pipeline steps
// ---------------------------------------------------------------------------

TEST(ResilientDataParallel, DisabledInjectorMatchesPlainStepExactly) {
  DataParallelConfig dp;
  dp.chips = 8;
  dp.overlap_comm = true;
  ResilienceConfig cfg;
  cfg.roce = dp.roce;
  const sim::FaultInjector off;
  const auto step = sim::SimTime::from_ms(250.0);
  const std::size_t grad = 1ull << 28;

  const auto plain = data_parallel_step(dp, step, grad, 4096);
  const auto res = resilient_data_parallel_step(cfg, dp, off, 0, step, grad, 4096);
  EXPECT_EQ(res.chips_used, dp.chips);
  EXPECT_EQ(res.step.compute, plain.compute);
  EXPECT_EQ(res.step.comm, plain.comm);
  EXPECT_EQ(res.step.exposed_comm, plain.exposed_comm);
  EXPECT_EQ(res.step.total, plain.total);
  EXPECT_DOUBLE_EQ(res.step.tokens_per_second, plain.tokens_per_second);
  EXPECT_DOUBLE_EQ(res.step.scaling_efficiency, plain.scaling_efficiency);
  EXPECT_EQ(res.straggler_stall, sim::SimTime::zero());
  EXPECT_EQ(res.hbm_stall, sim::SimTime::zero());
}

TEST(ResilientDataParallel, StragglerAndHbmPressureStretchTheStep) {
  DataParallelConfig dp;
  dp.chips = 8;
  ResilienceConfig cfg;
  cfg.roce = dp.roce;
  sim::FaultProfile profile;
  profile.tpc_straggler_rate = 1.0;  // every chip straggles
  profile.hbm_pressure_rate = 1.0;
  profile.straggler_slowdown = 2.0;
  const sim::FaultInjector inj{1, profile};
  const auto step = sim::SimTime::from_ms(100.0);

  const auto res =
      resilient_data_parallel_step(cfg, dp, inj, 0, step, 1 << 20, 4096);
  EXPECT_EQ(res.faults.stragglers, dp.chips);
  EXPECT_EQ(res.straggler_stall, step);  // 2x slowdown doubles the step
  EXPECT_EQ(res.hbm_stall, profile.hbm_pressure_stall);
  EXPECT_EQ(res.step.compute, step * 2 + profile.hbm_pressure_stall);
}

TEST(ResilientDataParallel, ChipLossScalesThroughputAndEfficiencyDown) {
  DataParallelConfig dp;
  dp.chips = 8;
  ResilienceConfig cfg;
  cfg.roce = dp.roce;
  sim::FaultProfile profile;
  profile.chip_failure_rate = 0.1;
  const sim::FaultInjector inj{5, profile};
  const std::uint64_t step_idx = step_with_losses(inj, dp.chips, 1);
  const auto step = sim::SimTime::from_ms(100.0);

  const auto healthy =
      resilient_data_parallel_step(cfg, dp, sim::FaultInjector{}, step_idx,
                                   step, 1 << 24, 4096);
  const auto degraded =
      resilient_data_parallel_step(cfg, dp, inj, step_idx, step, 1 << 24, 4096);
  EXPECT_EQ(degraded.chips_used, dp.chips - 1);
  EXPECT_LT(degraded.step.tokens_per_second, healthy.step.tokens_per_second);
  EXPECT_LT(degraded.step.scaling_efficiency, healthy.step.scaling_efficiency);
  EXPECT_GT(degraded.faults.reformation_overhead, sim::SimTime::zero());
}

TEST(ResilientPipeline, DisabledInjectorMatchesPlainStepExactly) {
  PipelineConfig pp;
  pp.stages = 8;
  pp.microbatches = 16;
  ResilienceConfig cfg;
  cfg.roce = pp.roce;
  const sim::FaultInjector off;
  const auto model_step = sim::SimTime::from_ms(400.0);

  const auto plain = pipeline_step(pp, model_step, 1 << 22, 2048);
  const auto res =
      resilient_pipeline_step(cfg, pp, off, 0, model_step, 1 << 22, 2048);
  EXPECT_EQ(res.stages_used, pp.stages);
  EXPECT_EQ(res.step.stage_time, plain.stage_time);
  EXPECT_EQ(res.step.boundary_comm, plain.boundary_comm);
  EXPECT_EQ(res.step.slot_time, plain.slot_time);
  EXPECT_EQ(res.step.total, plain.total);
  EXPECT_DOUBLE_EQ(res.step.bubble_fraction, plain.bubble_fraction);
  EXPECT_DOUBLE_EQ(res.step.tokens_per_second, plain.tokens_per_second);
}

TEST(ResilientPipeline, StageLossRepartitionsOverSurvivors) {
  PipelineConfig pp;
  pp.stages = 8;
  pp.microbatches = 16;
  ResilienceConfig cfg;
  cfg.roce = pp.roce;
  sim::FaultProfile profile;
  profile.chip_failure_rate = 0.1;
  const sim::FaultInjector inj{5, profile};
  const std::uint64_t step_idx = step_with_losses(inj, pp.stages, 1);

  const auto res = resilient_pipeline_step(cfg, pp, inj, step_idx,
                                           sim::SimTime::from_ms(400.0),
                                           1 << 22, 2048);
  EXPECT_EQ(res.stages_used, pp.stages - 1);
  EXPECT_EQ(res.faults.chips_lost, 1u);
  // Fewer stages -> each stage holds more layers -> longer stage time.
  const auto plain = pipeline_step(pp, sim::SimTime::from_ms(400.0), 1 << 22,
                                   2048);
  EXPECT_GT(res.step.stage_time, plain.stage_time);
  EXPECT_GT(res.faults.reformation_overhead, sim::SimTime::zero());
}

// ---------------------------------------------------------------------------
// Checkpoint / rollback recovery
// ---------------------------------------------------------------------------

TEST(Checkpoint, SaveTimeIsFixedOverheadPlusTransfer) {
  CheckpointConfig cfg;
  cfg.state_bytes = 2ull << 30;
  cfg.storage_bandwidth_bytes_per_s = 1.0e9;
  cfg.fixed_overhead = sim::SimTime::from_ms(10.0);
  const auto save = checkpoint_save_time(cfg);
  EXPECT_NEAR(save.seconds(), 0.010 + 2.147483648, 1e-6);
  EXPECT_EQ(checkpoint_restore_time(cfg), save);
  cfg.storage_bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW((void)checkpoint_save_time(cfg), sim::InvalidArgument);
}

TEST(Checkpoint, YoungDalyMatchesTheClosedForm) {
  // step = 1 s, save = 2 s, MTBF = 100 steps = 100 s:
  // W_opt = sqrt(2 * 2 * 100) = 20 s = 20 steps.
  const auto interval = young_daly_interval_steps(
      sim::SimTime::from_seconds(1.0), sim::SimTime::from_seconds(2.0), 100.0);
  EXPECT_EQ(interval, 20u);
  // Tiny save cost still yields at least one step between snapshots.
  EXPECT_GE(young_daly_interval_steps(sim::SimTime::from_seconds(1.0),
                                      sim::SimTime::from_us(1.0), 2.0),
            1u);
}

TEST(TrainingRun, FaultFreeAccountingIsExact) {
  TrainingRunConfig cfg;
  cfg.steps = 100;
  cfg.step_time = sim::SimTime::from_ms(100.0);
  cfg.policy = RecoveryPolicy::kFixedInterval;
  cfg.checkpoint_interval = 10;
  const sim::FaultInjector off;

  const auto rep = resilient_training_run(cfg, off);
  EXPECT_TRUE(rep.finished);
  EXPECT_EQ(rep.useful_steps, cfg.steps);
  EXPECT_EQ(rep.failures, 0u);
  EXPECT_EQ(rep.recomputed_steps, 0u);
  // 100 steps checkpoint at 10,20,...,90 — the finish-line snapshot is
  // skipped.
  EXPECT_EQ(rep.checkpoints, 9u);
  const auto save = checkpoint_save_time(cfg.checkpoint);
  EXPECT_EQ(rep.total_time, cfg.step_time * 100 + save * 9);
  EXPECT_LT(rep.goodput, 1.0);

  cfg.policy = RecoveryPolicy::kNone;
  const auto none = resilient_training_run(cfg, off);
  EXPECT_EQ(none.checkpoints, 0u);
  EXPECT_EQ(none.total_time, cfg.step_time * 100);
  EXPECT_DOUBLE_EQ(none.goodput, 1.0);
}

TEST(TrainingRun, SameSeedReproducesTheReportByteForByte) {
  TrainingRunConfig cfg;
  cfg.steps = 400;
  cfg.policy = RecoveryPolicy::kYoungDaly;
  cfg.mtbf_steps = 50.0;
  cfg.checkpoint.state_bytes = 1ull << 30;
  const sim::FaultProfile profile =
      sim::FaultProfile::from_mtbf_steps(cfg.mtbf_steps, cfg.chips);

  const auto a = resilient_training_run(cfg, sim::FaultInjector{11, profile});
  const auto b = resilient_training_run(cfg, sim::FaultInjector{11, profile});
  EXPECT_EQ(to_string(a), to_string(b));
  EXPECT_GT(a.failures, 0u) << "MTBF 50 over 400 steps must fail sometimes";

  const auto c = resilient_training_run(cfg, sim::FaultInjector{12, profile});
  EXPECT_NE(to_string(a), to_string(c));
}

TEST(TrainingRun, RollbackLossIsBoundedByTheCheckpointInterval) {
  TrainingRunConfig cfg;
  cfg.steps = 600;
  cfg.policy = RecoveryPolicy::kFixedInterval;
  cfg.checkpoint_interval = 25;
  cfg.mtbf_steps = 60.0;
  cfg.checkpoint.state_bytes = 1ull << 30;
  const sim::FaultInjector inj{
      3, sim::FaultProfile::from_mtbf_steps(cfg.mtbf_steps, cfg.chips)};

  const auto rep = resilient_training_run(cfg, inj);
  EXPECT_TRUE(rep.finished);
  EXPECT_GT(rep.failures, 0u);
  // Each failure rolls back at most one interval's worth of work.
  EXPECT_LE(rep.recomputed_steps, rep.failures * cfg.checkpoint_interval);
  EXPECT_EQ(rep.restores, rep.failures);
  EXPECT_GT(rep.total_time, cfg.step_time * static_cast<std::int64_t>(cfg.steps));
  EXPECT_GT(rep.goodput, 0.0);
  EXPECT_LT(rep.goodput, 1.0);
}

TEST(TrainingRun, CheckpointingBeatsRestartFromZeroUnderShortMtbf) {
  TrainingRunConfig cfg;
  cfg.steps = 500;
  cfg.mtbf_steps = 25.0;
  cfg.checkpoint.state_bytes = 1ull << 30;
  const sim::FaultInjector inj{
      7, sim::FaultProfile::from_mtbf_steps(cfg.mtbf_steps, cfg.chips)};

  cfg.policy = RecoveryPolicy::kNone;
  const auto none = resilient_training_run(cfg, inj);
  cfg.policy = RecoveryPolicy::kYoungDaly;
  const auto yd = resilient_training_run(cfg, inj);

  // Restart-from-zero cannot string together 500 clean steps at MTBF 25; the
  // run gives up at the attempt budget and reports the truncation honestly.
  EXPECT_FALSE(none.finished);
  EXPECT_LT(none.useful_steps, cfg.steps);
  EXPECT_TRUE(yd.finished);
  EXPECT_GT(yd.goodput, none.goodput);
}

TEST(TrainingRun, MeasuredOptimalIntervalIsWithinTwoXOfYoungDaly) {
  // The acceptance criterion from the bench, shrunk to test scale: sweep
  // fixed intervals at one MTBF and compare the argmax against the closed
  // form.
  TrainingRunConfig cfg;
  cfg.steps = 1000;
  cfg.step_time = sim::SimTime::from_ms(300.0);
  cfg.mtbf_steps = 100.0;
  cfg.policy = RecoveryPolicy::kFixedInterval;
  cfg.checkpoint.state_bytes = 1ull << 30;
  cfg.checkpoint.storage_bandwidth_bytes_per_s = 2.0e9;
  const sim::FaultInjector inj{
      0xFA517, sim::FaultProfile::from_mtbf_steps(cfg.mtbf_steps, cfg.chips)};
  const auto save = checkpoint_save_time(cfg.checkpoint);
  const std::uint64_t predicted =
      young_daly_interval_steps(cfg.step_time, save, cfg.mtbf_steps);

  std::uint64_t best_interval = 0;
  double best_goodput = -1.0;
  for (const std::uint64_t interval : {2u, 5u, 10u, 20u, 40u, 80u, 160u}) {
    cfg.checkpoint_interval = interval;
    const auto rep = resilient_training_run(cfg, inj);
    if (rep.goodput > best_goodput) {
      best_goodput = rep.goodput;
      best_interval = interval;
    }
  }
  ASSERT_GT(predicted, 0u);
  const double ratio = best_interval >= predicted
                           ? static_cast<double>(best_interval) /
                                 static_cast<double>(predicted)
                           : static_cast<double>(predicted) /
                                 static_cast<double>(best_interval);
  EXPECT_LE(ratio, 2.0) << "measured " << best_interval << " vs Young/Daly "
                        << predicted;
}

// ---------------------------------------------------------------------------
// Scheduler integration: zero-overhead default and fault-trace validity
// ---------------------------------------------------------------------------

graph::ProfileResult run_graph(const graph::Graph& g,
                               const sim::FaultInjector* faults) {
  graph::Runtime rt(sim::ChipConfig::hls1());
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.faults = faults;
  return rt.run(g, {}, opts);
}

TEST(FaultScheduling, DisabledInjectorIsBitIdenticalToTheNullPath) {
  // The zero-overhead guarantee: with faults absent (nullptr) or present but
  // disabled, the scheduled trace is byte-identical — JSON and all.
  const sim::FaultInjector off;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const graph::RandomDag dag = graph::random_dag(seed);
    const auto plain = run_graph(dag.graph, nullptr);
    const auto gated = run_graph(dag.graph, &off);
    EXPECT_EQ(plain.trace.to_chrome_json(), gated.trace.to_chrome_json())
        << "seed " << seed;
  }
}

TEST(FaultScheduling, StressFaultsProduceValidStallAndRetryTraces) {
  const sim::FaultInjector inj{21, sim::FaultProfile::stress()};
  int stalls = 0;
  int retries = 0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const graph::RandomDag dag = graph::random_dag(seed);
    const auto res = run_graph(dag.graph, nullptr);
    for (const graph::SchedulePolicy policy :
         {graph::SchedulePolicy::kBarrier, graph::SchedulePolicy::kOverlap}) {
      const graph::Trace trace = graph::schedule(
          dag.graph, res.node_execs, sim::ChipConfig::hls1(), policy, &inj);
      ASSERT_EQ(graph::TraceValidator::format(graph::TraceValidator::validate(
                    dag.graph, res.node_execs, trace, policy,
                    sim::ChipConfig::hls1())),
                "")
          << "seed " << seed << " policy " << schedule_policy_name(policy);
      for (const auto& e : trace.events()) {
        stalls += e.kind == graph::TraceEventKind::kStall;
        retries += e.retry > 0;
      }
    }
  }
  // The corpus must actually exercise both fault paths.
  EXPECT_GT(stalls, 0);
  EXPECT_GT(retries, 0);
}

TEST(FaultScheduling, SameFaultSeedSameTrace) {
  const graph::RandomDag dag = graph::random_dag(17);
  const auto res = run_graph(dag.graph, nullptr);
  const sim::FaultInjector a{33, sim::FaultProfile::stress()};
  const sim::FaultInjector b{33, sim::FaultProfile::stress()};
  const graph::Trace ta =
      graph::schedule(dag.graph, res.node_execs, sim::ChipConfig::hls1(),
                      graph::SchedulePolicy::kOverlap, &a);
  const graph::Trace tb =
      graph::schedule(dag.graph, res.node_execs, sim::ChipConfig::hls1(),
                      graph::SchedulePolicy::kOverlap, &b);
  EXPECT_EQ(ta.to_chrome_json(), tb.to_chrome_json());
}

}  // namespace
}  // namespace gaudi::scaleout

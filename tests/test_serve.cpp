// Serving simulator tests: workload determinism, paged-allocator
// invariants, percentile edge cases, scheduler end-to-end runs, and
// regression tests for the decode/CLI input-validation fixes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/cli.hpp"
#include "graph/runtime.hpp"
#include "nn/decode.hpp"
#include "serve/kv_cache.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/workload.hpp"
#include "sim/error.hpp"
#include "sim/fault.hpp"

namespace gaudi {
namespace {

// ---------------------------------------------------------------- percentile

TEST(Percentile, EmptyReturnsNaN) {
  EXPECT_TRUE(std::isnan(serve::percentile({}, 50.0)));
}

TEST(Percentile, SingleSampleIsEveryPercentile) {
  EXPECT_EQ(serve::percentile({7.0}, 0.0), 7.0);
  EXPECT_EQ(serve::percentile({7.0}, 50.0), 7.0);
  EXPECT_EQ(serve::percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, NearestRankOnKnownData) {
  const std::vector<double> v = {10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(serve::percentile(v, 0.0), 10.0);    // rank clamps to 1
  EXPECT_EQ(serve::percentile(v, 50.0), 50.0);   // ceil(5.0) = 5th
  EXPECT_EQ(serve::percentile(v, 90.0), 90.0);
  EXPECT_EQ(serve::percentile(v, 91.0), 100.0);  // ceil(9.1) = 10th
  EXPECT_EQ(serve::percentile(v, 100.0), 100.0);
  // Order of the input must not matter.
  EXPECT_EQ(serve::percentile({30, 10, 20}, 50.0), 20.0);
}

TEST(Percentile, RejectsOutOfRangeP) {
  EXPECT_THROW((void)serve::percentile({1.0}, -1.0), sim::InvalidArgument);
  EXPECT_THROW((void)serve::percentile({1.0}, 101.0), sim::InvalidArgument);
}

TEST(MetricsSink, FirstTokenCountsAsOutput) {
  serve::MetricsSink sink;
  serve::Request r;
  r.id = 3;
  sink.on_offered(r);
  sink.on_first_token(3, sim::SimTime::from_ms(5.0));
  sink.on_token(3, sim::SimTime::from_ms(1.0));
  sink.on_token(3, sim::SimTime::from_ms(1.0));
  sink.on_complete(3, sim::SimTime::from_ms(8.0));
  const serve::ServeSummary s = sink.summary(sim::SimTime::from_ms(8.0));
  EXPECT_EQ(s.tokens_out, 3);
  EXPECT_EQ(s.completed, 1);
  EXPECT_EQ(s.deadline_met, 1);  // no deadline configured counts as met
}

// ------------------------------------------------------------------ workload

serve::StreamConfig tiny_stream() {
  serve::StreamConfig cfg;
  cfg.arrival_rate_rps = 50.0;
  cfg.num_requests = 10;
  cfg.prompt = {2, 4};
  cfg.output = {2, 3};
  cfg.seed = 0xBEEF;
  return cfg;
}

TEST(Workload, PoissonStreamIsDeterministicAndInRange) {
  const auto a = serve::poisson_stream(tiny_stream());
  const auto b = serve::poisson_stream(tiny_stream());
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<std::int64_t>(i));
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
    EXPECT_EQ(a[i].output_len, b[i].output_len);
    EXPECT_GE(a[i].prompt_len, 2);
    EXPECT_LE(a[i].prompt_len, 4);
    EXPECT_GE(a[i].output_len, 2);
    EXPECT_LE(a[i].output_len, 3);
    if (i > 0) EXPECT_GE(a[i].arrival, a[i - 1].arrival);
  }
  serve::StreamConfig other = tiny_stream();
  other.seed = 0xF00D;
  const auto c = serve::poisson_stream(other);
  bool differs = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    differs = differs || c[i].arrival != a[i].arrival ||
              c[i].prompt_len != a[i].prompt_len;
  }
  EXPECT_TRUE(differs);
}

TEST(Workload, RejectsDegenerateConfigs) {
  serve::StreamConfig cfg = tiny_stream();
  cfg.arrival_rate_rps = 0.0;
  EXPECT_THROW((void)serve::poisson_stream(cfg), sim::InvalidArgument);
  cfg = tiny_stream();
  cfg.prompt = {4, 2};  // inverted
  EXPECT_THROW((void)serve::poisson_stream(cfg), sim::InvalidArgument);
}

TEST(Workload, ParsesTraceAndNamesBadLine) {
  std::istringstream good(
      "# captured workload\n"
      "0,4,2\n"
      "12,3,2,1\n"
      "\n"
      "3,2,2,0,250\n");
  const auto reqs = serve::parse_trace(good);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].prompt_len, 4);
  EXPECT_EQ(reqs[1].arrival, sim::SimTime::from_ms(3.0));  // sorted by arrival
  EXPECT_EQ(reqs[2].priority, 1);
  EXPECT_EQ(reqs[1].deadline, sim::SimTime::from_ms(250.0));

  std::istringstream bad("0,4,2\nabc,2,3\n");
  try {
    (void)serve::parse_trace(bad);
    FAIL() << "malformed trace line accepted";
  } catch (const sim::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// ---------------------------------------------------------- paged allocator

serve::PagedKvConfig pool(std::int64_t blocks, std::int64_t block_tokens = 4) {
  serve::PagedKvConfig cfg;
  cfg.block_tokens = block_tokens;
  cfg.num_blocks = blocks;
  return cfg;
}

TEST(PagedKv, ReserveGrowReleaseKeepsAccounting) {
  serve::PagedKvAllocator kv(pool(4));
  EXPECT_TRUE(kv.can_reserve(16));
  EXPECT_FALSE(kv.can_reserve(17));

  ASSERT_TRUE(kv.reserve(1, 5));  // 2 blocks, 3 slots fragmented
  serve::KvStats s = kv.stats();
  EXPECT_EQ(s.used_tokens, 5);
  EXPECT_EQ(s.fragmented_tokens, 3);
  EXPECT_EQ(s.free_tokens, 8);
  EXPECT_EQ(s.used_tokens + s.fragmented_tokens + s.free_tokens,
            s.capacity_tokens);
  kv.audit();

  ASSERT_TRUE(kv.grow(1, 8));  // fills the tail block, no new allocation
  EXPECT_EQ(kv.stats().fragmented_tokens, 0);
  ASSERT_TRUE(kv.grow(1, 9));  // third block
  EXPECT_EQ(kv.free_blocks(), 1);
  EXPECT_FALSE(kv.grow(1, 17));  // 5 blocks needed, pool holds 4
  EXPECT_EQ(kv.reserved_tokens(1), 12);  // the failed grow changed nothing
  ASSERT_TRUE(kv.grow(1, 13));  // fourth and final block
  EXPECT_EQ(kv.free_blocks(), 0);
  EXPECT_FALSE(kv.can_reserve(1));
  kv.audit();

  kv.release(1);
  EXPECT_EQ(kv.free_blocks(), 4);
  EXPECT_FALSE(kv.holds(1));
  EXPECT_EQ(kv.peak_used_blocks(), 4);
  kv.audit();

  // Freed blocks are immediately reusable by another request.
  ASSERT_TRUE(kv.reserve(2, 16));
  EXPECT_EQ(kv.free_blocks(), 0);
  kv.release(2);
  kv.audit();
}

TEST(PagedKv, FailedOperationsChangeNothing) {
  serve::PagedKvAllocator kv(pool(2));
  ASSERT_TRUE(kv.reserve(1, 4));
  EXPECT_FALSE(kv.reserve(2, 8));  // 2 blocks needed, 1 free
  EXPECT_FALSE(kv.holds(2));
  EXPECT_EQ(kv.free_blocks(), 1);
  EXPECT_FALSE(kv.grow(1, 12));  // 3 blocks needed, pool has 2
  EXPECT_EQ(kv.reserved_tokens(1), 4);
  kv.audit();
  // Double reservation under one id is a caller bug, not a soft failure.
  EXPECT_THROW((void)kv.reserve(1, 1), sim::InvalidArgument);
  kv.release(1);
  EXPECT_THROW(kv.release(1), sim::InvalidArgument);
}

// ---------------------------------------------------------------- scheduler

serve::ServeConfig tiny_serve() {
  serve::ServeConfig cfg;
  cfg.model = nn::DecodeConfig::tiny();
  cfg.max_batch = 2;
  cfg.prefill_chunk = 4;
  cfg.ctx_bucket = 4;
  cfg.block_tokens = 4;
  cfg.kv_budget_bytes = 4096;  // 8 blocks of 4 tokens (tiny: 128 B/token)
  return cfg;
}

TEST(Scheduler, SameSeedRunsAreByteIdentical) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  serve::ContinuousBatchScheduler a(rt, tiny_serve());
  serve::ContinuousBatchScheduler b(rt, tiny_serve());
  const serve::ServeReport ra = a.run(stream);
  const serve::ServeReport rb = b.run(stream);
  EXPECT_EQ(ra.to_report(), rb.to_report());
  EXPECT_EQ(ra.summary.offered, 10);
  EXPECT_EQ(ra.summary.completed, 10);
  EXPECT_EQ(ra.summary.rejected, 0);
  // Every request yields output_len tokens, first token included.
  std::int64_t want = 0;
  for (const serve::Request& r : stream) want += r.output_len;
  EXPECT_EQ(ra.summary.tokens_out, want);
  EXPECT_GT(ra.summary.throughput_tok_s, 0.0);
}

TEST(Scheduler, TinyPoolPreemptsAndStillCompletesEveryone) {
  // 3 blocks of 4 tokens; two co-resident requests peak at 2 blocks each,
  // so one must preempt the other and recompute its KV after resuming.
  ::setenv("GAUDI_VALIDATE", "1", 1);  // audit the allocator every iteration
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.kv_budget_bytes = 3 * 4 * 128;
  std::vector<serve::Request> stream(2);
  stream[0].id = 0;
  stream[0].prompt_len = 4;
  stream[0].output_len = 4;
  stream[1].id = 1;
  stream[1].prompt_len = 4;
  stream[1].output_len = 4;
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  ::unsetenv("GAUDI_VALIDATE");
  EXPECT_EQ(r.summary.completed, 2);
  EXPECT_GE(r.summary.preemptions, 1);
  EXPECT_GT(r.summary.recomputed_tokens, 0);
  EXPECT_EQ(r.kv_total_blocks, 3);
  EXPECT_LE(r.kv_peak_blocks, 3);
  EXPECT_EQ(r.summary.tokens_out, 8);
}

TEST(Scheduler, RejectsRequestsThatCanNeverFit) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();  // tiny model: max_seq = 16
  std::vector<serve::Request> stream(2);
  stream[0].id = 0;
  stream[0].prompt_len = 14;
  stream[0].output_len = 4;  // peak rows 17 > max_seq
  stream[1].id = 1;
  stream[1].prompt_len = 2;
  stream[1].output_len = 2;
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  EXPECT_EQ(r.summary.rejected, 1);
  EXPECT_EQ(r.summary.completed, 1);
  ASSERT_EQ(r.requests.size(), 2u);
  EXPECT_EQ(r.requests[0].outcome, serve::RequestOutcome::kRejected);
  EXPECT_EQ(r.requests[1].outcome, serve::RequestOutcome::kCompleted);
}

// ----------------------------------------------- decode bugfix regressions

TEST(DecodeValidation, PrefillNamesTheLimit) {
  graph::Graph g;
  const nn::DecodeConfig cfg = nn::DecodeConfig::tiny();
  EXPECT_THROW((void)nn::build_gpt_prefill(g, cfg, 0), sim::InvalidArgument);
  try {
    (void)nn::build_gpt_prefill(g, cfg, 17);
    FAIL() << "over-long prefill accepted";
  } catch (const sim::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("max_seq=16"), std::string::npos) << what;
    EXPECT_NE(what.find("17"), std::string::npos) << what;
  }
}

TEST(DecodeValidation, DecodeStepNamesTheLimit) {
  graph::Graph g;
  const nn::DecodeConfig cfg = nn::DecodeConfig::tiny();
  EXPECT_THROW((void)nn::build_gpt_decode_step(g, cfg, 0),
               sim::InvalidArgument);
  try {
    (void)nn::build_gpt_decode_step(g, cfg, 16);  // appended token overflows
    FAIL() << "full-context decode step accepted";
  } catch (const sim::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("max_seq=16"), std::string::npos) << what;
    EXPECT_NE(what.find("16"), std::string::npos) << what;
  }
}

TEST(DecodeStepCacheLru, UncappedNeverEvicts) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  nn::DecodeStepCache cache(rt, nn::DecodeConfig::tiny());
  (void)cache.step(2);
  (void)cache.step(4);
  (void)cache.step(6);
  EXPECT_EQ(cache.compiled_steps(), 3u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(DecodeStepCacheLru, CapEvictsLeastRecentlyUsed) {
  const graph::Runtime rt(sim::ChipConfig::hls1());
  nn::DecodeStepCache cache(rt, nn::DecodeConfig::tiny(), {}, 0xDEC0DE,
                            /*max_entries=*/2);
  (void)cache.step(2);
  (void)cache.step(4);
  EXPECT_EQ(cache.compiled_steps(), 2u);
  EXPECT_EQ(cache.evictions(), 0u);
  (void)cache.step(2);  // refresh: 4 is now the LRU entry
  (void)cache.step(6);  // evicts 4
  EXPECT_EQ(cache.compiled_steps(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  (void)cache.step(4);  // recompiles, evicting 2
  EXPECT_EQ(cache.compiled_steps(), 2u);
  EXPECT_EQ(cache.evictions(), 2u);
  (void)cache.step(6);  // still resident: no further eviction
  EXPECT_EQ(cache.evictions(), 2u);
}

// -------------------------------------------------- CLI bugfix regressions

int run(std::initializer_list<const char*> args, std::string* out = nullptr) {
  std::vector<std::string> v{"gaudisim_cli"};
  v.insert(v.end(), args.begin(), args.end());
  std::ostringstream os;
  const int rc = core::run_cli(v, os);
  if (out) *out = os.str();
  return rc;
}

TEST(ParseI64, AcceptsIntegersRejectsGarbage) {
  EXPECT_EQ(core::parse_i64("42", "x"), 42);
  EXPECT_EQ(core::parse_i64("-7", "x"), -7);
  EXPECT_THROW((void)core::parse_i64("", "x"), sim::InvalidArgument);
  EXPECT_THROW((void)core::parse_i64("abc", "x"), sim::InvalidArgument);
  EXPECT_THROW((void)core::parse_i64("12abc", "x"), sim::InvalidArgument);
  EXPECT_THROW((void)core::parse_i64("1.5", "x"), sim::InvalidArgument);
  EXPECT_THROW((void)core::parse_i64("99999999999999999999", "x"),
               sim::InvalidArgument);
  try {
    (void)core::parse_i64("12abc", "option --sizes");
    FAIL();
  } catch (const sim::InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--sizes"), std::string::npos) << what;
    EXPECT_NE(what.find("12abc"), std::string::npos) << what;
  }
}

TEST(CliRegression, MalformedSizesIsUsageErrorNotTerminate) {
  std::string out;
  EXPECT_EQ(run({"mme-vs-tpc", "--sizes", "12x"}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_NE(out.find("--sizes"), std::string::npos);
  EXPECT_EQ(run({"mme-vs-tpc", "--sizes", "128,,256"}, &out), 1);
  EXPECT_EQ(run({"mme-vs-tpc", "--sizes", "99999999999999999999"}, &out), 1);
}

TEST(CliRegression, TrailingGarbageIntegersAreRejected) {
  std::string out;
  EXPECT_EQ(run({"profile-layer", "--batch", "foo"}, &out), 1);
  EXPECT_NE(out.find("error:"), std::string::npos);
  EXPECT_EQ(run({"profile-layer", "--seq", "12abc"}, &out), 1);
  EXPECT_NE(out.find("trailing"), std::string::npos);
  EXPECT_EQ(run({"serve", "--requests", "3x"}, &out), 1);
  EXPECT_NE(out.find("--requests"), std::string::npos);
  EXPECT_EQ(run({"serve", "--rate", "fast"}, &out), 1);
  EXPECT_NE(out.find("--rate"), std::string::npos);
  EXPECT_EQ(run({"train", "--sdc-rate", "0.5x"}, &out), 1);
  EXPECT_NE(out.find("trailing"), std::string::npos);
}

TEST(CliServe, SmokeRunIsDeterministic) {
  const std::initializer_list<const char*> cmd = {
      "serve",         "--requests", "4",  "--rate",       "40",
      "--prompt-min",  "8",          "--prompt-max", "16",
      "--output-min",  "4",          "--output-max", "8",
      "--max-batch",   "2",          "--prefill-chunk", "16",
      "--kv-mb",       "4"};
  std::string out;
  ASSERT_EQ(run(cmd, &out), 0);
  EXPECT_NE(out.find("serve: 4 requests"), std::string::npos);
  EXPECT_NE(out.find("4 offered, 4 completed"), std::string::npos);
  EXPECT_NE(out.find("TTFT:"), std::string::npos);
  EXPECT_NE(out.find("kv pool:"), std::string::npos);
  std::string again;
  ASSERT_EQ(run(cmd, &again), 0);
  EXPECT_EQ(out, again);
  // Unknown options still fail loudly.
  EXPECT_EQ(run({"serve", "--nonsense", "1"}, &out), 1);
  EXPECT_NE(out.find("unknown option"), std::string::npos);
}

// ---------------------------------------------------- deadlines + fast path

TEST(Scheduler, ExpiredDeadlineDropsInsteadOfWastingTheSlot) {
  // One batch slot: request 1 queues behind request 0 and its budget expires
  // before a slot ever frees, so admission drops it instead of prefilling
  // work whose answer is already too late.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.max_batch = 1;
  std::vector<serve::Request> stream(2);
  stream[0].id = 0;
  stream[0].prompt_len = 8;
  stream[0].output_len = 8;
  stream[1].id = 1;
  stream[1].prompt_len = 2;
  stream[1].output_len = 2;
  stream[1].deadline = sim::SimTime::from_ms(0.001);
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  EXPECT_EQ(r.summary.completed, 1);
  EXPECT_EQ(r.summary.dropped, 1);
  EXPECT_EQ(r.deadline_drops, 1);
  ASSERT_EQ(r.requests.size(), 2u);
  EXPECT_EQ(r.requests[0].outcome, serve::RequestOutcome::kCompleted);
  EXPECT_EQ(r.requests[1].outcome, serve::RequestOutcome::kDropped);
  EXPECT_NE(r.to_report().find(
                "outcomes: 0 rejected, 1 dropped, 0 shed, 0 failed, "
                "0 timed-out"),
            std::string::npos);
}

// ---------------------------------------------------------- fault tolerance

/// Injector firing only chip failures, at `rate` per iteration.
sim::FaultInjector chip_killer(double rate, std::uint64_t seed = 0x5EED) {
  sim::FaultProfile p;
  p.chip_failure_rate = rate;
  return sim::FaultInjector{seed, p};
}

TEST(FaultServe, ChipFailureRetriesAndCompletesEveryone) {
  // Kill-and-recover: chip failures abort in-flight batches and invalidate
  // their KV blocks, yet with a generous retry budget every request still
  // completes.  GAUDI_VALIDATE audits the allocator bijection every
  // iteration, including the mass release a mid-iteration failure forces.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.faults = chip_killer(0.2);
  cfg.retry_max = 16;
  cfg.retry_backoff = sim::SimTime::from_ms(0.5);
  cfg.chip_restart = sim::SimTime::from_ms(1.0);
  const auto stream = serve::poisson_stream(tiny_stream());
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  ::unsetenv("GAUDI_VALIDATE");
  EXPECT_GE(r.chip_failures, 1);
  EXPECT_TRUE(r.faults_enabled);
  EXPECT_EQ(r.summary.completed, 10);
  EXPECT_EQ(r.summary.failed, 0);
  EXPECT_GE(r.summary.fault_retries, 1);
  EXPECT_GT(r.summary.wasted_tokens, 0);
  EXPECT_NE(r.to_report().find("faults:"), std::string::npos);

  // Same (stream, config, fault seed) replays byte-identically.
  serve::ContinuousBatchScheduler again(rt, cfg);
  EXPECT_EQ(r.to_report(), again.run(stream).to_report());
}

TEST(FaultServe, RetryBudgetExhaustionFails) {
  // Every iteration kills the chip and the budget allows no retries: every
  // admitted request ends in the typed kFailed outcome instead of looping.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.faults = chip_killer(1.0);
  cfg.retry_max = 0;
  std::vector<serve::Request> stream(2);
  stream[0].id = 0;
  stream[0].prompt_len = 4;
  stream[0].output_len = 2;
  stream[1].id = 1;
  stream[1].prompt_len = 2;
  stream[1].output_len = 2;
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  EXPECT_EQ(r.summary.completed, 0);
  EXPECT_EQ(r.summary.failed, 2);
  EXPECT_GT(r.summary.wasted_tokens, 0);
  EXPECT_EQ(r.summary.availability, 0.0);
  ASSERT_EQ(r.requests.size(), 2u);
  EXPECT_EQ(r.requests[0].outcome, serve::RequestOutcome::kFailed);
  EXPECT_EQ(r.requests[1].outcome, serve::RequestOutcome::kFailed);
  // Failed requests must not contribute latency samples.
  EXPECT_TRUE(std::isnan(r.summary.ttft_p50_ms));
}

TEST(FaultServe, DisabledInjectorIsByteIdenticalToFaultFreePath) {
  // Handing the scheduler a disabled injector — plus every fault knob that
  // only matters once faults fire — must not change a byte of the report.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  serve::ContinuousBatchScheduler plain(rt, tiny_serve());
  serve::ServeConfig cfg = tiny_serve();
  cfg.faults = sim::FaultInjector{0x99, sim::FaultProfile::disabled()};
  cfg.retry_max = 7;
  cfg.retry_backoff = sim::SimTime::from_ms(123.0);
  cfg.chip_restart = sim::SimTime::from_ms(456.0);
  serve::ContinuousBatchScheduler disabled(rt, cfg);
  EXPECT_EQ(plain.run(stream).to_report(), disabled.run(stream).to_report());
}

TEST(FaultServe, WatchdogAbortsStalledRequests) {
  // A watchdog tighter than one iteration fires before the first token:
  // the request ends kTimedOut and its samples stay out of the percentiles.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.watchdog = sim::SimTime::from_ps(1);
  std::vector<serve::Request> stream(1);
  stream[0].id = 0;
  stream[0].prompt_len = 8;
  stream[0].output_len = 4;
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  EXPECT_EQ(r.summary.completed, 0);
  EXPECT_EQ(r.summary.timed_out, 1);
  ASSERT_EQ(r.requests.size(), 1u);
  EXPECT_EQ(r.requests[0].outcome, serve::RequestOutcome::kTimedOut);
  EXPECT_NE(r.to_report().find("TTFT:     p50 n/a"), std::string::npos);
  EXPECT_NE(r.to_report().find("availability 0.0%"), std::string::npos);
}

TEST(FaultServe, PreemptedPastDeadlineDropsNotRecomputes) {
  // Preemption x deadline x fault interaction: a preempted request whose
  // budget expired while requeued must drop at re-admission instead of
  // re-reserving KV and recomputing its prefill.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.kv_budget_bytes = 3 * 4 * 128;  // 3 blocks: forces a preemption
  std::vector<serve::Request> stream(2);
  stream[0].id = 0;
  stream[0].prompt_len = 4;
  stream[0].output_len = 4;
  // Request 0 is the deterministic preemption victim (the grower never
  // preempts itself); its budget expires before re-admission.
  stream[0].deadline = sim::SimTime::from_ps(1);
  stream[1].id = 1;
  stream[1].prompt_len = 4;
  stream[1].output_len = 4;
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  EXPECT_EQ(r.summary.completed, 1);
  EXPECT_EQ(r.summary.dropped, 1);
  EXPECT_GE(r.summary.preemptions, 1);
  EXPECT_EQ(r.deadline_drops, 1);
  ASSERT_EQ(r.requests.size(), 2u);
  EXPECT_EQ(r.requests[0].outcome, serve::RequestOutcome::kDropped);
  EXPECT_GE(r.requests[0].preemptions, 1);
  EXPECT_EQ(r.requests[1].outcome, serve::RequestOutcome::kCompleted);
}

TEST(FaultServe, ShedsLowestPriorityArrivalsUnderOverload) {
  // One slot, backlog bound 1: of the three queued arrivals the two with
  // the lowest priority shed; the highest-priority one waits and completes.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.max_batch = 1;
  cfg.shed_queue_depth = 1;
  std::vector<serve::Request> stream(4);
  for (std::int64_t i = 0; i < 4; ++i) {
    stream[i].id = i;
    stream[i].prompt_len = 2;
    stream[i].output_len = 2;
  }
  stream[1].priority = 2;
  stream[2].priority = 1;
  stream[3].priority = 0;
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  EXPECT_EQ(r.summary.completed, 2);
  EXPECT_EQ(r.summary.shed, 2);
  ASSERT_EQ(r.requests.size(), 4u);
  EXPECT_EQ(r.requests[0].outcome, serve::RequestOutcome::kCompleted);
  EXPECT_EQ(r.requests[1].outcome, serve::RequestOutcome::kCompleted);
  EXPECT_EQ(r.requests[2].outcome, serve::RequestOutcome::kShed);
  EXPECT_EQ(r.requests[3].outcome, serve::RequestOutcome::kShed);
}

TEST(FaultServe, FaultRunTimingOnlyParityHolds) {
  // The timing-only fast path must replay the exact fault schedule: cost
  // probes stay clean baselines (the memo is fault-free) and the scheduler
  // layers the same deterministic stretches on top in either mode.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  sim::FaultProfile prof;
  prof.chip_failure_rate = 0.1;
  prof.tpc_straggler_rate = 0.3;
  prof.hbm_pressure_rate = 0.2;
  serve::ServeConfig functional = tiny_serve();
  functional.faults = sim::FaultInjector{0x5EED, prof};
  functional.retry_max = 16;
  functional.timing_only = false;
  serve::ServeConfig fast = functional;
  fast.timing_only = true;
  serve::ContinuousBatchScheduler a(rt, functional);
  serve::ContinuousBatchScheduler b(rt, fast);
  const serve::ServeReport ra = a.run(stream);
  EXPECT_EQ(ra.to_report(), b.run(stream).to_report());
  EXPECT_GE(ra.tpc_stragglers + ra.hbm_stalls + ra.chip_failures, 1);
}

TEST(CliServe, RejectsNonPositiveGeometryNamingTheFlag) {
  const auto expect_named_error = [](const char* flag, const char* value) {
    std::string out;
    EXPECT_EQ(run({"serve", flag, value}, &out), 1) << flag;
    EXPECT_NE(out.find("error:"), std::string::npos) << out;
    EXPECT_NE(out.find(flag), std::string::npos) << out;
  };
  expect_named_error("--prefill-chunk", "0");
  expect_named_error("--ctx-bucket", "0");
  expect_named_error("--block-tokens", "-3");
  expect_named_error("--kv-mb", "0");
  expect_named_error("--retry-max", "-1");
  expect_named_error("--watchdog-ms", "-5");
  expect_named_error("--shed-queue-depth", "-2");
  expect_named_error("--shed-free-blocks", "-1");
}

TEST(CliServe, FaultFlagsAreDeterministicAndReportFaults) {
  const std::initializer_list<const char*> cmd = {
      "serve",          "--requests",   "6",    "--rate",        "40",
      "--prompt-min",   "4",            "--prompt-max", "8",
      "--output-min",   "2",            "--output-max", "4",
      "--max-batch",    "2",            "--prefill-chunk", "8",
      "--kv-mb",        "4",            "--faults",
      "--mtbf",         "25",           "--fault-seed",  "7",
      "--retry-max",    "4",            "--watchdog-ms", "4000"};
  std::string out;
  ASSERT_EQ(run(cmd, &out), 0);
  EXPECT_NE(out.find("faults:"), std::string::npos) << out;
  EXPECT_NE(out.find("availability"), std::string::npos);
  std::string again;
  ASSERT_EQ(run(cmd, &again), 0);
  EXPECT_EQ(out, again);
}

TEST(Scheduler, TimingOnlyModeReproducesTheFunctionalReport) {
  // The fast path must leave every reported number — latency percentiles,
  // batch occupancy, cache counters — untouched.
  const graph::Runtime rt(sim::ChipConfig::hls1());
  const auto stream = serve::poisson_stream(tiny_stream());
  serve::ServeConfig functional = tiny_serve();
  functional.timing_only = false;
  serve::ServeConfig fast = tiny_serve();
  fast.timing_only = true;
  serve::ContinuousBatchScheduler a(rt, functional);
  serve::ContinuousBatchScheduler b(rt, fast);
  const std::string ra = a.run(stream).to_report();
  const std::string rb = b.run(stream).to_report();
  EXPECT_EQ(ra, rb);
}

TEST(CliServe, UsageMentionsServing) {
  std::string out;
  run({"help"}, &out);
  EXPECT_NE(out.find("serve"), std::string::npos);
  EXPECT_NE(out.find("--max-batch"), std::string::npos);
  EXPECT_NE(out.find("--kv-mb"), std::string::npos);
  EXPECT_NE(out.find("--arrivals"), std::string::npos);
}

TEST(CliServe, FaultFlagsAreValidatedWithNamedErrors) {
  // Every fault/robustness flag rejects negative or garbled values with a
  // message naming the flag — the --max-batch discipline, extended.
  std::string out;
  EXPECT_EQ(run({"serve", "--watchdog-ms", "-1"}, &out), 1);
  EXPECT_NE(out.find("--watchdog-ms"), std::string::npos);
  EXPECT_EQ(run({"serve", "--shed-queue-depth", "-2"}, &out), 1);
  EXPECT_NE(out.find("--shed-queue-depth"), std::string::npos);
  EXPECT_EQ(run({"serve", "--shed-free-blocks", "-1"}, &out), 1);
  EXPECT_NE(out.find("--shed-free-blocks"), std::string::npos);
  EXPECT_EQ(run({"serve", "--retry-max", "-3"}, &out), 1);
  EXPECT_NE(out.find("--retry-max"), std::string::npos);
  EXPECT_EQ(run({"serve", "--retry-backoff-ms", "-1"}, &out), 1);
  EXPECT_NE(out.find("--retry-backoff-ms"), std::string::npos);
  EXPECT_EQ(run({"serve", "--retry-backoff-max-ms", "0"}, &out), 1);
  EXPECT_NE(out.find("--retry-backoff-max-ms"), std::string::npos);
  // --mtbf must be rejected even when --faults is absent (the injector
  // would be disabled, but a nonsense value is still a user error)...
  EXPECT_EQ(run({"serve", "--mtbf", "-5"}, &out), 1);
  EXPECT_NE(out.find("--mtbf"), std::string::npos);
  // ...and garbage is a parse error, not a silent zero.
  EXPECT_EQ(run({"serve", "--watchdog-ms", "soon"}, &out), 1);
  EXPECT_NE(out.find("--watchdog-ms"), std::string::npos);
  EXPECT_EQ(run({"serve", "--retry-max", "3x"}, &out), 1);
  EXPECT_NE(out.find("--retry-max"), std::string::npos);
}

TEST(FaultServe, WatchdogShedAndRetryComposeToOneTypedOutcome) {
  // A backed-off retry can simultaneously be past its deadline, sheddable
  // under overload, and watchdog-stalled.  Whatever wins, each request must
  // resolve to exactly one typed outcome, deterministically.
  ::setenv("GAUDI_VALIDATE", "1", 1);
  const graph::Runtime rt(sim::ChipConfig::hls1());
  serve::ServeConfig cfg = tiny_serve();
  cfg.max_batch = 1;
  cfg.faults = chip_killer(0.3);
  cfg.retry_max = 2;
  cfg.retry_backoff = sim::SimTime::from_ms(2.0);
  cfg.chip_restart = sim::SimTime::from_ms(4.0);
  cfg.watchdog = sim::SimTime::from_ms(30.0);
  cfg.shed_queue_depth = 2;
  serve::StreamConfig scfg = tiny_stream();
  scfg.num_requests = 12;
  scfg.arrival_rate_rps = 400.0;  // burst: backlog deep enough to shed
  auto stream = serve::poisson_stream(scfg);
  for (auto& q : stream) q.deadline = sim::SimTime::from_ms(25.0);
  serve::ContinuousBatchScheduler sched(rt, cfg);
  const serve::ServeReport r = sched.run(stream);
  const serve::ServeSummary& s = r.summary;
  EXPECT_EQ(s.offered, 12);
  EXPECT_EQ(s.completed + s.rejected + s.dropped + s.shed + s.timed_out +
                s.failed,
            s.offered);
  // The interaction actually exercised all three mechanisms.
  EXPECT_GE(r.chip_failures, 1);
  EXPECT_GE(s.shed + s.dropped + s.timed_out, 1);
  // Deterministic: the same config and stream reproduce the bytes.
  serve::ContinuousBatchScheduler again(rt, cfg);
  EXPECT_EQ(r.to_report(), again.run(stream).to_report());
  ::unsetenv("GAUDI_VALIDATE");
}

}  // namespace
}  // namespace gaudi

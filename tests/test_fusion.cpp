// Fusion-pass tests: chain discovery rules, fused-kernel numerics against
// the composed reference, and the runtime-level effects (time, memory,
// unchanged outputs).
#include <gtest/gtest.h>

#include "graph/autodiff.hpp"
#include "graph/fusion.hpp"
#include "graph/runtime.hpp"
#include "tensor/ops.hpp"
#include "tpc/cluster.hpp"

namespace gaudi::graph {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

ProfileResult run(const Graph& g, const std::unordered_map<ValueId, Tensor>& feeds,
                  bool fuse, tpc::ExecMode mode = tpc::ExecMode::kFunctional) {
  Runtime rt;
  RunOptions opts;
  opts.mode = mode;
  opts.fuse_elementwise = fuse;
  return rt.run(g, feeds, opts);
}

TEST(FusionPlan, FindsLinearChain) {
  Graph g;
  const ValueId x = g.input(Shape{{256}}, DType::F32, "x");
  const ValueId a = g.relu(x);
  const ValueId b = g.add_scalar(a, 1.0f);
  const ValueId c = g.mul_scalar(b, 2.0f);
  g.mark_output(c);

  const FusionPlan plan = plan_fusion(g);
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].nodes.size(), 3u);
  EXPECT_TRUE(plan.fused(0));
  EXPECT_TRUE(plan.is_group_tail(g, 2));
  EXPECT_FALSE(plan.is_group_tail(g, 0));
  // Intermediates a and b are internal; the tail output is not.
  EXPECT_TRUE(plan.internal_value[static_cast<std::size_t>(a)]);
  EXPECT_TRUE(plan.internal_value[static_cast<std::size_t>(b)]);
  EXPECT_FALSE(plan.internal_value[static_cast<std::size_t>(c)]);
}

TEST(FusionPlan, StopsAtMultiConsumerValues) {
  Graph g;
  const ValueId x = g.input(Shape{{64}}, DType::F32, "x");
  const ValueId a = g.relu(x);
  const ValueId b = g.add_scalar(a, 1.0f);
  // `a` has two consumers: the chain must not swallow it.
  g.mark_output(g.mul(a, b));

  const FusionPlan plan = plan_fusion(g);
  for (const auto& group : plan.groups) {
    for (const NodeId n : group.nodes) {
      EXPECT_NE(g.node(n).outputs[0], a);
    }
  }
}

TEST(FusionPlan, StopsAtGraphOutputs) {
  Graph g;
  const ValueId x = g.input(Shape{{64}}, DType::F32, "x");
  const ValueId a = g.relu(x);
  g.mark_output(a);  // must materialize even though singly consumed
  g.mark_output(g.add_scalar(a, 1.0f));
  const FusionPlan plan = plan_fusion(g);
  EXPECT_TRUE(plan.groups.empty());
}

TEST(FusionPlan, DoesNotCrossNonElementwiseOps) {
  Graph g;
  const ValueId x = g.input(Shape{{8, 8}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{8, 8}}, "w");
  const ValueId a = g.relu(x);
  const ValueId m = g.matmul(a, w);
  g.mark_output(g.relu(m));
  const FusionPlan plan = plan_fusion(g);
  EXPECT_TRUE(plan.groups.empty());  // single ew ops on each side, no chain
}

TEST(FusionPlan, SingleOpsAreNotGroups) {
  Graph g;
  const ValueId x = g.input(Shape{{64}}, DType::F32, "x");
  g.mark_output(g.relu(x));
  EXPECT_TRUE(plan_fusion(g).groups.empty());
}

TEST(FusedKernel, MatchesComposedNumerics) {
  // relu -> +1 -> *3 -> sigmoid -> (chain) * y  (binary with external rhs)
  Graph g;
  const ValueId x = g.input(Shape{{777}}, DType::F32, "x");
  const ValueId y = g.input(Shape{{777}}, DType::F32, "y");
  ValueId h = g.relu(x);
  h = g.add_scalar(h, 1.0f);
  h = g.mul_scalar(h, 3.0f);
  h = g.sigmoid(h);
  h = g.mul(h, y);
  g.mark_output(h);

  const FusionPlan plan = plan_fusion(g);
  ASSERT_EQ(plan.groups.size(), 1u);
  ASSERT_EQ(plan.groups[0].nodes.size(), 5u);

  const sim::CounterRng rng(81);
  const Tensor xv = Tensor::uniform(Shape{{777}}, rng.stream(1), -2.0f, 2.0f);
  const Tensor yv = Tensor::uniform(Shape{{777}}, rng.stream(2), -2.0f, 2.0f);

  // Run the fused kernel directly, functionally.
  std::vector<Tensor> tensors(g.num_values());
  tensors[static_cast<std::size_t>(x)] = xv;
  tensors[static_cast<std::size_t>(y)] = yv;
  for (ValueId v = 0; v < static_cast<ValueId>(g.num_values()); ++v) {
    if (!tensors[static_cast<std::size_t>(v)].defined()) {
      tensors[static_cast<std::size_t>(v)] = Tensor::zeros(g.value(v).shape);
    }
  }
  const FusedChainKernel kernel(g, plan.groups[0], tensors);
  const tpc::TpcCluster cluster(sim::ChipConfig::hls1().tpc);
  cluster.run(kernel, tpc::ExecMode::kFunctional);

  const Tensor expect = ops::mul(
      ops::sigmoid(ops::mul_scalar(ops::add_scalar(ops::relu(xv), 1.0f), 3.0f)), yv);
  EXPECT_LT(ops::max_abs_diff(tensors[static_cast<std::size_t>(h)], expect), 1e-5);
}

TEST(FusedKernel, HandlesChainAsRhsOperand) {
  // b - chain: the chain value is the *second* operand of the binary op.
  Graph g;
  const ValueId x = g.input(Shape{{100}}, DType::F32, "x");
  const ValueId b = g.input(Shape{{100}}, DType::F32, "b");
  const ValueId a = g.relu(x);
  const ValueId out = g.sub(b, a);
  g.mark_output(out);

  const sim::CounterRng rng(82);
  const Tensor xv = Tensor::uniform(Shape{{100}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor bv = Tensor::uniform(Shape{{100}}, rng.stream(2), -1.0f, 1.0f);
  const auto fused = run(g, {{x, xv}, {b, bv}}, /*fuse=*/true);
  EXPECT_LT(ops::max_abs_diff(fused.outputs.at(out), ops::sub(bv, ops::relu(xv))),
            1e-6);
}

TEST(FusionRuntime, OutputsIdenticalWithAndWithoutFusion) {
  Graph g;
  const ValueId x = g.input(Shape{{16, 32}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{32, 32}}, "w");
  ValueId h = g.matmul(x, w);
  h = g.gelu(h);
  h = g.mul_scalar(h, 0.5f);
  h = g.add_scalar(h, 0.1f);
  const ValueId y = g.softmax(h);
  g.mark_output(y);

  const sim::CounterRng rng(83);
  const std::unordered_map<ValueId, Tensor> feeds = {
      {x, Tensor::uniform(Shape{{16, 32}}, rng.stream(1), -1.0f, 1.0f)},
      {w, Tensor::normal(Shape{{32, 32}}, rng.stream(2), 0.2f)}};
  const auto plain = run(g, feeds, false);
  const auto fused = run(g, feeds, true);
  EXPECT_EQ(ops::max_abs_diff(plain.outputs.at(y), fused.outputs.at(y)), 0.0);
}

TEST(FusionRuntime, ReducesTimeAndMemory) {
  Graph g;
  const std::int64_t n = 1 << 20;
  const ValueId x = g.input(Shape{{n}}, DType::F32, "x");
  ValueId h = g.relu(x);
  for (int i = 0; i < 5; ++i) h = g.add_scalar(h, 1.0f);
  g.mark_output(h);

  const auto plain = run(g, {}, false, tpc::ExecMode::kTiming);
  const auto fused = run(g, {}, true, tpc::ExecMode::kTiming);
  // Six launches and ten global round-trips collapse into one kernel.
  EXPECT_LT(fused.makespan.seconds(), 0.5 * plain.makespan.seconds());
  EXPECT_LT(fused.hbm_peak_bytes, plain.hbm_peak_bytes);

  // The trace shows one fused event instead of six.
  int tpc_events = 0;
  bool fused_label = false;
  for (const auto& e : fused.trace.events()) {
    if (e.engine == Engine::kTpc) {
      ++tpc_events;
      fused_label |= e.name.find("fused[") == 0;
    }
  }
  EXPECT_EQ(tpc_events, 1);
  EXPECT_TRUE(fused_label);
}

TEST(FusionRuntime, TrainingGraphStillCorrectUnderFusion) {
  // An autodiff-built graph has fusable chains (grad scaling etc.); fusion
  // must not change gradients.
  Graph g;
  const ValueId x = g.param(Shape{{6, 6}}, "x");
  const ValueId h = g.gelu(g.mul_scalar(x, 2.0f));
  const ValueId loss = g.reduce_mean(g.reshape(g.mul(h, h), Shape{{1, 36}}));
  const ValueId wrt[] = {x};
  const auto back = build_backward(g, loss, wrt);
  g.mark_output(back.grads.at(x));

  const Tensor xv =
      Tensor::uniform(Shape{{6, 6}}, sim::CounterRng{84}, -1.0f, 1.0f);
  const auto plain = run(g, {{x, xv}}, false);
  const auto fused = run(g, {{x, xv}}, true);
  EXPECT_EQ(ops::max_abs_diff(plain.outputs.at(back.grads.at(x)),
                              fused.outputs.at(back.grads.at(x))),
            0.0);
}

TEST(FusionCompiled, ChainsArePreBoundAtCompileTime) {
  // Compiling with fusion on must capture every chain as a FusedChainSpec so
  // run() only binds tensors — no chain re-discovery or operand re-walking
  // per run.
  Graph g;
  const ValueId x = g.input(Shape{{512}}, DType::F32, "x");
  const ValueId y = g.input(Shape{{512}}, DType::F32, "y");
  ValueId h = g.relu(x);
  h = g.add_scalar(h, 1.0f);
  h = g.mul(h, y);
  const ValueId out = g.sigmoid(h);
  g.mark_output(out);

  Runtime rt;
  CompileOptions copts;
  copts.fuse_elementwise = true;
  const CompiledGraph cg = rt.compile(g, copts);
  ASSERT_EQ(cg.fusion.groups.size(), cg.chains.size());
  ASSERT_EQ(cg.chains.size(), 1u);
  const FusedChainSpec& spec = cg.chains[0];
  EXPECT_EQ(spec.chain_input, x);
  EXPECT_EQ(spec.output, out);
  EXPECT_EQ(spec.steps.size(), 4u);
  // The binary link's external operand was resolved at compile time.
  EXPECT_EQ(spec.steps[2].external, y);

  // And the compiled artifact is bit-identical to the unfused one.
  const sim::CounterRng rng(85);
  const std::unordered_map<ValueId, Tensor> feeds = {
      {x, Tensor::uniform(Shape{{512}}, rng.stream(1), -2.0f, 2.0f)},
      {y, Tensor::uniform(Shape{{512}}, rng.stream(2), -2.0f, 2.0f)}};
  RunOptions opts;
  const auto fused = rt.run(cg, feeds, opts);
  const auto plain = rt.run(rt.compile(g), feeds, opts);
  EXPECT_EQ(ops::max_abs_diff(plain.outputs.at(out), fused.outputs.at(out)),
            0.0);
}

}  // namespace
}  // namespace gaudi::graph

// Compile/execute split: pass-pipeline artifacts, static memory planning,
// and the run-many runtime.
//
// The property section fuzzes the memory planner the same way the schedule
// fuzzer attacks the scheduler: a few hundred seeded random DAGs, each
// compiled once (fusion on and off) and checked for the plan invariants —
// no two simultaneously-live buffers share bytes, the planned peak equals
// the dynamic allocator's observed peak, and one artifact run twice yields
// identical traces and outputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "graph/compiler.hpp"
#include "graph/random_graph.hpp"
#include "graph/runtime.hpp"
#include "graph/validate.hpp"
#include "memory/memory_planner.hpp"
#include "nn/decode.hpp"
#include "tensor/ops.hpp"

namespace gaudi::graph {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

sim::ChipConfig chip() { return sim::ChipConfig::hls1(); }

// ---------------------------------------------------------------------------
// Pass pipeline basics
// ---------------------------------------------------------------------------

TEST(Compiler, RunsAllPassesAndRecordsStats) {
  Graph g;
  const ValueId x = g.input(Shape{{64, 64}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{64, 64}}, "w");
  ValueId h = g.matmul(x, w);
  h = g.gelu(h);
  h = g.mul_scalar(h, 0.5f);
  g.mark_output(g.softmax(h));

  CompileOptions copts;
  copts.fuse_elementwise = true;
  const CompiledGraph cg = Runtime(chip()).compile(g, copts);

  ASSERT_EQ(cg.stats.passes.size(), 7u);
  const char* expected[] = {"fingerprint",     "engine-mapping",
                            "elementwise-fusion", "dma-insertion",
                            "liveness",        "memory-planning",
                            "topological-order"};
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(cg.stats.passes[i].name, expected[i]);
  }
  EXPECT_EQ(cg.order.size(), g.num_nodes());
  EXPECT_EQ(cg.node_engine.size(), g.num_nodes());
  EXPECT_EQ(cg.fusion.groups.size(), 1u);
  EXPECT_GT(cg.stats.planned_buffers, 0u);
  EXPECT_GT(cg.stats.peak_bytes, 0u);
  EXPECT_GE(cg.stats.arena_bytes, cg.stats.peak_bytes);
  EXPECT_GE(cg.stats.total_bytes, cg.stats.arena_bytes);
  // The human-readable report mentions every pass.
  const std::string report = cg.stats.to_string();
  for (const char* name : expected) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

TEST(Compiler, ArtifactOutlivesGraphAndRuntime) {
  CompiledGraph cg;
  {
    Graph g;
    const ValueId x = g.input(Shape{{32}}, DType::F32, "x");
    g.mark_output(g.relu(x));
    cg = Runtime(chip()).compile(g);
  }  // graph and runtime are gone; the artifact owns everything it needs
  const Runtime rt(chip());
  const Tensor xv =
      Tensor::uniform(Shape{{32}}, sim::CounterRng{7}, -1.0f, 1.0f);
  const auto result = rt.run(cg, {{0, xv}});
  EXPECT_LT(ops::max_abs_diff(result.outputs.begin()->second, ops::relu(xv)),
            1e-6);
}

TEST(Compiler, StaticPlanReusesBuffers) {
  // A long straight chain of same-sized intermediates: with reuse the arena
  // stays O(1) buffers deep while the no-reuse total grows with the chain.
  Graph g;
  const std::int64_t n = 1 << 16;
  ValueId h = g.input(Shape{{n}}, DType::F32, "x");
  for (int i = 0; i < 8; ++i) h = g.unary(tpc::UnaryKind::kSqrt, h);
  g.mark_output(h);

  const CompiledGraph cg = Runtime(chip()).compile(g);
  EXPECT_GT(cg.stats.reuse_saved_bytes(), 0u);
  EXPECT_LT(cg.stats.arena_bytes, cg.stats.total_bytes);
  EXPECT_TRUE(validate_memory_plan(cg).empty());
}

TEST(Compiler, CapacityEnforcedAtCompileTime) {
  sim::ChipConfig small = chip();
  small.memory.hbm_bytes = 1 << 10;
  Graph g;
  const ValueId x = g.input(Shape{{1 << 16}}, DType::F32, "x");
  g.mark_output(g.relu(x));
  EXPECT_THROW((void)Runtime(small).compile(g), sim::ResourceExhausted);
  // With enforcement off, compilation plans the same layout and succeeds.
  CompileOptions copts;
  copts.enforce_capacity = false;
  const CompiledGraph cg = Runtime(small).compile(g, copts);
  EXPECT_GT(cg.stats.peak_bytes, small.memory.hbm_bytes);
}

// ---------------------------------------------------------------------------
// Memory-planner unit behavior
// ---------------------------------------------------------------------------

TEST(MemoryPlanner, DisjointLifetimesShareOffsets) {
  std::vector<memory::BufferInterval> ivs(3);
  ivs[0] = {memory::BufferInterval::kPreGraph,
            memory::BufferInterval::kNeverFreed, 64, "resident"};
  ivs[1] = {0, 1, 128, "a"};  // dies at step 1
  ivs[2] = {2, 3, 128, "b"};  // born at step 2: can take a's bytes
  const memory::MemoryPlan plan = memory::plan_memory(ivs);
  EXPECT_EQ(plan.buffers[1].offset, plan.buffers[2].offset);
  EXPECT_EQ(plan.peak_bytes, 64u + 128u);
  EXPECT_EQ(plan.arena_bytes, 64u + 128u);
  EXPECT_EQ(plan.total_bytes, 64u + 128u + 128u);
}

TEST(MemoryPlanner, OverlappingLifetimesDoNot) {
  std::vector<memory::BufferInterval> ivs(2);
  ivs[0] = {0, 2, 256, "a"};
  ivs[1] = {1, 3, 256, "b"};  // alive at step 2 together with a
  const memory::MemoryPlan plan = memory::plan_memory(ivs);
  const std::size_t lo = std::min(plan.buffers[0].offset, plan.buffers[1].offset);
  const std::size_t hi = std::max(plan.buffers[0].offset, plan.buffers[1].offset);
  EXPECT_GE(hi, lo + 256);
  EXPECT_EQ(plan.peak_bytes, 512u);
}

// ---------------------------------------------------------------------------
// Satellite regressions
// ---------------------------------------------------------------------------

TEST(CompiledRun, OutputWithNoConsumersKeepsStorage) {
  // An output value whose consumer count hits zero mid-run must keep both
  // its host storage and its device allocation: the caller reads it after
  // run() returns.  (The release path used to re-check `!info.is_output`
  // inside a branch already guarded by it — dead code that hid this
  // contract from view.)
  Graph g;
  const ValueId x = g.input(Shape{{64}}, DType::F32, "x");
  const ValueId mid = g.relu(x);   // marked output AND consumed
  const ValueId tail = g.sigmoid(mid);
  g.mark_output(mid);
  g.mark_output(tail);

  const Runtime rt(chip());
  const CompiledGraph cg = rt.compile(g);
  // The plan never frees an output's buffer.
  EXPECT_EQ(cg.placements[static_cast<std::size_t>(mid)].freed_at,
            memory::BufferInterval::kNeverFreed);

  const Tensor xv =
      Tensor::uniform(Shape{{64}}, sim::CounterRng{11}, -1.0f, 1.0f);
  RunOptions opts;
  opts.validate = true;  // peak cross-check would catch an early release
  const auto result = rt.run(cg, {{x, xv}}, opts);
  ASSERT_TRUE(result.outputs.at(mid).defined());
  EXPECT_LT(ops::max_abs_diff(result.outputs.at(mid), ops::relu(xv)), 1e-6);
}

TEST(CompiledRun, FusionBitIdenticalThroughCompiledPath) {
  Graph g;
  const ValueId x = g.input(Shape{{16, 32}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{32, 32}}, "w");
  ValueId h = g.matmul(x, w);
  h = g.gelu(h);
  h = g.mul_scalar(h, 0.5f);
  h = g.add_scalar(h, 0.1f);
  const ValueId y = g.softmax(h);
  g.mark_output(y);

  const sim::CounterRng rng(21);
  const std::unordered_map<ValueId, Tensor> feeds = {
      {x, Tensor::uniform(Shape{{16, 32}}, rng.stream(1), -1.0f, 1.0f)},
      {w, Tensor::normal(Shape{{32, 32}}, rng.stream(2), 0.2f)}};

  const Runtime rt(chip());
  CompileOptions fused_opts;
  fused_opts.fuse_elementwise = true;
  RunOptions opts;
  opts.validate = true;
  const auto plain = rt.run(rt.compile(g), feeds, opts);
  const auto fused = rt.run(rt.compile(g, fused_opts), feeds, opts);
  EXPECT_EQ(ops::max_abs_diff(plain.outputs.at(y), fused.outputs.at(y)), 0.0);
}

TEST(CompiledRun, DecodeStepCacheCompilesOncePerContextLength) {
  const Runtime rt(chip());
  nn::DecodeStepCache cache(rt, nn::DecodeConfig::tiny());
  const auto* first = &cache.step(8);
  EXPECT_EQ(cache.compiled_steps(), 1u);
  // Same context length: the cached artifact, not a recompile.
  EXPECT_EQ(&cache.step(8), first);
  EXPECT_EQ(cache.compiled_steps(), 1u);
  (void)cache.step(9);
  EXPECT_EQ(cache.compiled_steps(), 2u);

  // The cached artifact actually runs (timing mode, validated).
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.validate = true;
  const auto result = rt.run(first->compiled, {}, opts);
  EXPECT_GT(result.makespan, sim::SimTime::zero());
}

// ---------------------------------------------------------------------------
// Property fuzz: plan invariants over random DAGs
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeeds = 200;

TEST(CompilerFuzz, MemoryPlanInvariantsHold) {
  const Runtime rt(chip());
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const RandomDag dag = random_dag(seed);
    for (const bool fuse : {false, true}) {
      CompileOptions copts;
      copts.fuse_elementwise = fuse;
      const CompiledGraph cg = rt.compile(dag.graph, copts);
      // No two simultaneously-live buffers overlap, every buffer fits the
      // arena, and every live range is well-formed.
      EXPECT_EQ(TraceValidator::format(validate_memory_plan(cg)), "")
          << "seed " << seed << " fuse " << fuse;
      EXPECT_GE(cg.stats.arena_bytes, cg.stats.peak_bytes)
          << "seed " << seed << " fuse " << fuse;
    }
  }
}

TEST(CompilerFuzz, PlannedPeakMatchesDynamicAllocator) {
  const Runtime rt(chip());
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.validate = true;  // run() cross-checks planned vs dynamic peak
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const RandomDag dag = random_dag(seed);
    for (const bool fuse : {false, true}) {
      CompileOptions copts;
      copts.fuse_elementwise = fuse;
      const CompiledGraph cg = rt.compile(dag.graph, copts);
      ASSERT_NO_THROW((void)rt.run(cg, {}, opts))
          << "seed " << seed << " fuse " << fuse;
    }
  }
}

TEST(CompilerFuzz, CompileOnceRunTwiceIsDeterministic) {
  const Runtime rt(chip());
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 4) {
    const RandomDag dag = random_dag(seed);
    const auto feeds = random_feeds(dag.graph, seed);
    const CompiledGraph cg = rt.compile(dag.graph);

    RunOptions opts;  // functional, so outputs carry real numerics
    const auto r1 = rt.run(cg, feeds, opts);
    const auto r2 = rt.run(cg, feeds, opts);
    EXPECT_EQ(r1.trace.to_chrome_json(), r2.trace.to_chrome_json())
        << "seed " << seed;
    EXPECT_EQ(r1.hbm_peak_bytes, r2.hbm_peak_bytes) << "seed " << seed;
    ASSERT_EQ(r1.outputs.size(), r2.outputs.size()) << "seed " << seed;
    for (const auto& [v, t1] : r1.outputs) {
      EXPECT_EQ(ops::max_abs_diff(t1, r2.outputs.at(v)), 0.0)
          << "seed " << seed << " value " << v;
    }
  }
}

}  // namespace
}  // namespace gaudi::graph

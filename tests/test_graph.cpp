// Graph IR, compiler and runtime tests: shape inference, the Table 1 engine
// mapping, functional execution against the tensor reference, liveness-based
// memory accounting, scheduler invariants, and trace analysis.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/analysis.hpp"
#include "graph/autodiff.hpp"
#include "graph/runtime.hpp"
#include "tensor/ops.hpp"

namespace gaudi::graph {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

sim::ChipConfig chip() { return sim::ChipConfig::hls1(); }

ProfileResult run_functional(const Graph& g,
                             const std::unordered_map<ValueId, Tensor>& feeds,
                             SchedulePolicy policy = SchedulePolicy::kBarrier) {
  Runtime rt(chip());
  RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  opts.policy = policy;
  return rt.run(g, feeds, opts);
}

ProfileResult run_timing(const Graph& g,
                         SchedulePolicy policy = SchedulePolicy::kBarrier) {
  Runtime rt(chip());
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.policy = policy;
  return rt.run(g, {}, opts);
}

// ---------------------------------------------------------------------------
// Builder and shape inference
// ---------------------------------------------------------------------------

TEST(GraphBuilder, ShapeInferenceAcrossOps) {
  Graph g;
  const ValueId x = g.input(Shape{{4, 8}});
  const ValueId w = g.param(Shape{{8, 16}}, "w");
  const ValueId y = g.matmul(x, w);
  EXPECT_TRUE(g.value(y).shape == (Shape{{4, 16}}));
  EXPECT_TRUE(g.value(g.softmax(y)).shape == (Shape{{4, 16}}));
  EXPECT_TRUE(g.value(g.reduce_sum(y)).shape == (Shape{{4, 1}}));
  EXPECT_TRUE(g.value(g.transpose(y)).shape == (Shape{{16, 4}}));
  const ValueId q = g.input(Shape{{2, 3, 4, 8}});
  EXPECT_TRUE(g.value(g.swap_axes12(q)).shape == (Shape{{2, 4, 3, 8}}));
  EXPECT_TRUE(g.value(g.glu(g.input(Shape{{4, 10}}))).shape == (Shape{{4, 5}}));
}

TEST(GraphBuilder, MatmulTransposesAffectShapes) {
  Graph g;
  const ValueId a = g.input(Shape{{3, 8, 4}});
  const ValueId b = g.input(Shape{{3, 8, 6}});
  const ValueId y = g.matmul(a, b, /*trans_a=*/true, /*trans_b=*/false);
  EXPECT_TRUE(g.value(y).shape == (Shape{{3, 4, 6}}));
  EXPECT_THROW(g.matmul(a, b, false, false), sim::InvalidArgument);
}

TEST(GraphBuilder, ValidatesInputs) {
  Graph g;
  const ValueId x = g.input(Shape{{4, 8}});
  EXPECT_THROW(g.add(x, g.input(Shape{{3, 3}})), sim::InvalidArgument);
  EXPECT_THROW(g.add_op(OpKind::kSoftmax, {ValueId{99}}, {}, "bad"),
               sim::InvalidArgument);
  EXPECT_THROW(g.embedding(g.param(Shape{{10, 4}}, "t"), x),  // ids must be i32
               sim::InvalidArgument);
  EXPECT_THROW(g.reshape(x, Shape{{5, 5}}), sim::InvalidArgument);
}

TEST(GraphBuilder, TracksProducersAndConsumers) {
  Graph g;
  const ValueId x = g.input(Shape{{4}});
  const ValueId y = g.add_scalar(x, 1.0f);
  const ValueId z = g.mul(y, y);
  EXPECT_EQ(g.value(x).producer, -1);
  EXPECT_EQ(g.value(y).producer, 0);
  EXPECT_EQ(g.value(y).consumers.size(), 2u);  // mul consumes it twice
  EXPECT_EQ(g.value(z).producer, 1);
  EXPECT_EQ(g.param_bytes(), 0u);
}

TEST(EngineMapping, OnlyMatmulGoesToMme) {
  // The paper's Table 1 as an invariant over the whole op vocabulary.
  for (int k = 0; k <= static_cast<int>(OpKind::kReshape); ++k) {
    const auto kind = static_cast<OpKind>(k);
    const Engine e = engine_of(kind);
    if (kind == OpKind::kMatMul) {
      EXPECT_EQ(e, Engine::kMme);
    } else if (kind == OpKind::kReshape) {
      EXPECT_EQ(e, Engine::kNone);
    } else {
      EXPECT_EQ(e, Engine::kTpc) << op_kind_name(kind);
    }
  }
}

// ---------------------------------------------------------------------------
// Functional execution
// ---------------------------------------------------------------------------

TEST(Runtime, FunctionalCompositeMatchesReference) {
  // y = softmax(x @ w + b) checked against the tensor reference.
  Graph g;
  const ValueId x = g.input(Shape{{5, 8}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{8, 12}}, "w");
  const ValueId b = g.param(Shape{{12}}, "b");
  const ValueId y = g.softmax(g.matmul_bias(x, w, b));
  g.mark_output(y);

  const sim::CounterRng rng(71);
  const Tensor xv = Tensor::uniform(Shape{{5, 8}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor wv = Tensor::uniform(Shape{{8, 12}}, rng.stream(2), -1.0f, 1.0f);
  const Tensor bv = Tensor::uniform(Shape{{12}}, rng.stream(3), -1.0f, 1.0f);
  const auto result = run_functional(g, {{x, xv}, {w, wv}, {b, bv}});

  const Tensor expect =
      ops::softmax_lastdim(ops::add_rowvec(ops::matmul(xv, wv), bv));
  EXPECT_LT(ops::max_abs_diff(result.outputs.at(y), expect), 1e-5);
}

TEST(Runtime, RequiresAllFeeds) {
  Graph g;
  const ValueId x = g.input(Shape{{2, 2}}, DType::F32, "x");
  g.mark_output(g.add_scalar(x, 1.0f));
  EXPECT_THROW(run_functional(g, {}), sim::InvalidArgument);
}

TEST(Runtime, ValidatesFeedShapeAndDtype) {
  Graph g;
  const ValueId x = g.input(Shape{{2, 2}}, DType::F32, "x");
  g.mark_output(g.add_scalar(x, 1.0f));
  EXPECT_THROW(run_functional(g, {{x, Tensor::zeros(Shape{{3, 3}})}}),
               sim::InvalidArgument);
  EXPECT_THROW(run_functional(g, {{x, Tensor::zeros(Shape{{2, 2}}, DType::I32)}}),
               sim::InvalidArgument);
}

TEST(Runtime, ReshapeAliasesWithoutCost) {
  Graph g;
  const ValueId x = g.input(Shape{{2, 6}}, DType::F32, "x");
  const ValueId r = g.reshape(x, Shape{{3, 4}});
  const ValueId y = g.add_scalar(r, 0.0f);
  g.mark_output(y);
  const Tensor xv = Tensor::uniform(Shape{{2, 6}}, sim::CounterRng{3});
  const auto result = run_functional(g, {{x, xv}});
  EXPECT_TRUE(result.outputs.at(y).shape() == (Shape{{3, 4}}));
  // Reshape contributes no trace event.
  for (const auto& e : result.trace.events()) {
    EXPECT_NE(e.name.find("reshape"), 0u);
  }
}

TEST(Runtime, TimingModeProducesSameScheduleAsFunctional) {
  Graph g;
  const ValueId x = g.input(Shape{{64, 64}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{64, 64}}, "w");
  g.mark_output(g.softmax(g.matmul(x, w)));

  const auto timing = run_timing(g);
  const auto functional = run_functional(
      g, {{x, Tensor::zeros(Shape{{64, 64}})}, {w, Tensor::zeros(Shape{{64, 64}})}});
  EXPECT_EQ(timing.makespan.ps(), functional.makespan.ps());
  EXPECT_EQ(timing.trace.events().size(), functional.trace.events().size());
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

TEST(Runtime, AccountsPeakMemoryWithLiveness) {
  Graph g;
  const std::int64_t n = 1024;  // 4 MB per tensor
  const ValueId x = g.input(Shape{{n, n}}, DType::F32, "x");
  ValueId h = x;
  for (int i = 0; i < 4; ++i) h = g.add_scalar(h, 1.0f);
  g.mark_output(h);

  const auto result = run_timing(g);
  const std::size_t tensor_bytes = n * n * 4;
  // Liveness: at most input + two chain temporaries alive at once.
  EXPECT_GE(result.hbm_peak_bytes, 2 * tensor_bytes);
  EXPECT_LE(result.hbm_peak_bytes, 3 * tensor_bytes);
}

TEST(Runtime, ThrowsWhenGraphExceedsHbm) {
  Graph g;
  // 8 GB per value; five simultaneously-live copies exceed 32 GB.
  const std::int64_t n = 46341;  // ~8.0 GB f32
  const ValueId x = g.input(Shape{{n, n}}, DType::F32, "x");
  const ValueId a = g.add_scalar(x, 1.0f);
  const ValueId b = g.add_scalar(x, 2.0f);
  const ValueId c = g.add_scalar(x, 3.0f);
  const ValueId d = g.add_scalar(x, 4.0f);
  g.mark_output(g.add(g.add(a, b), g.add(c, d)));
  EXPECT_THROW(run_timing(g), sim::ResourceExhausted);
}

TEST(Runtime, MemoryAccountingCanBeDisabled) {
  Graph g;
  const std::int64_t n = 46341;
  const ValueId x = g.input(Shape{{n, n}}, DType::F32, "x");
  const ValueId a = g.add_scalar(x, 1.0f);
  const ValueId b = g.add_scalar(x, 2.0f);
  const ValueId c = g.add_scalar(x, 3.0f);
  const ValueId d = g.add_scalar(x, 4.0f);
  g.mark_output(g.add(g.add(a, b), g.add(c, d)));
  Runtime rt(chip());
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.account_memory = false;
  EXPECT_NO_THROW(rt.run(g, {}, opts));
}

// ---------------------------------------------------------------------------
// Scheduler invariants
// ---------------------------------------------------------------------------

Graph mixed_graph() {
  // Alternating MME/TPC work with an independent side branch.
  Graph g;
  const ValueId x = g.input(Shape{{256, 256}}, DType::F32, "x");
  const ValueId w1 = g.param(Shape{{256, 256}}, "w1");
  const ValueId w2 = g.param(Shape{{256, 256}}, "w2");
  const ValueId h1 = g.matmul(x, w1, false, false, "mm1");
  const ValueId a1 = g.softmax(h1, "sm1");
  const ValueId h2 = g.matmul(x, w2, false, false, "mm2");  // independent of a1
  const ValueId a2 = g.relu(h2);
  g.mark_output(g.add(a1, a2, "join"));
  return g;
}

TEST(Scheduler, NoOverlappingEventsPerEngine) {
  for (const auto policy : {SchedulePolicy::kBarrier, SchedulePolicy::kOverlap}) {
    const auto result = run_timing(mixed_graph(), policy);
    std::map<Engine, std::vector<TraceEvent>> per_engine;
    for (const auto& e : result.trace.events()) per_engine[e.engine].push_back(e);
    for (auto& [eng, events] : per_engine) {
      std::sort(events.begin(), events.end(),
                [](const TraceEvent& a, const TraceEvent& b) {
                  return a.start < b.start;
                });
      for (std::size_t i = 1; i < events.size(); ++i) {
        EXPECT_GE(events[i].start, events[i - 1].end)
            << engine_name(eng) << " overlap under "
            << schedule_policy_name(policy);
      }
    }
  }
}

TEST(Scheduler, DependenciesAreRespected) {
  for (const auto policy : {SchedulePolicy::kBarrier, SchedulePolicy::kOverlap}) {
    const Graph g = mixed_graph();
    const auto result = run_timing(g, policy);
    // Map node -> event times.
    std::map<std::int32_t, const TraceEvent*> by_node;
    for (const auto& e : result.trace.events()) {
      if (e.node >= 0 && e.engine != Engine::kDma) by_node[e.node] = &e;
    }
    for (NodeId n = 0; n < static_cast<NodeId>(g.num_nodes()); ++n) {
      const auto it = by_node.find(n);
      if (it == by_node.end()) continue;
      for (const ValueId v : g.node(n).inputs) {
        const NodeId p = g.value(v).producer;
        if (p < 0) continue;
        const auto pit = by_node.find(p);
        if (pit == by_node.end()) continue;
        EXPECT_GE(it->second->start, pit->second->end)
            << "node " << n << " started before its producer finished";
      }
    }
  }
}

TEST(Scheduler, BarrierNeverOverlapsAcrossEngines) {
  const auto result = run_timing(mixed_graph(), SchedulePolicy::kBarrier);
  const auto& events = result.trace.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (events[i].engine == events[j].engine) continue;
      const bool disjoint =
          events[i].end <= events[j].start || events[j].end <= events[i].start;
      EXPECT_TRUE(disjoint) << events[i].name << " overlaps " << events[j].name;
    }
  }
}

TEST(Scheduler, OverlapIsNeverSlowerAndExploitsIndependence) {
  const auto barrier = run_timing(mixed_graph(), SchedulePolicy::kBarrier);
  const auto overlap = run_timing(mixed_graph(), SchedulePolicy::kOverlap);
  EXPECT_LE(overlap.makespan, barrier.makespan);
  // The independent mm2 branch can hide behind sm1's TPC time.
  EXPECT_LT(overlap.makespan.ps(), barrier.makespan.ps());
}

TEST(Scheduler, InsertsDmaOnCrossEngineEdges) {
  const auto result = run_timing(mixed_graph(), SchedulePolicy::kBarrier);
  int dma_events = 0;
  for (const auto& e : result.trace.events()) {
    if (e.engine == Engine::kDma) {
      ++dma_events;
      EXPECT_GT(e.bytes, 0u);
      EXPECT_EQ(e.name.rfind("dma:", 0), 0u);
    }
  }
  EXPECT_GT(dma_events, 0);
}

TEST(Scheduler, DmaIsDeduplicatedPerConsumerEngine) {
  // One value consumed twice by the same engine needs one DMA only.
  Graph g;
  const ValueId x = g.input(Shape{{64, 64}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{64, 64}}, "w");
  const ValueId h = g.matmul(x, w, false, false, "mm");  // MME-produced
  const ValueId r1 = g.relu(h);                          // TPC consumer 1
  const ValueId r2 = g.softmax(h);                       // TPC consumer 2
  g.mark_output(g.add(r1, r2));
  const auto result = run_timing(g);
  int dma_for_h = 0;
  for (const auto& e : result.trace.events()) {
    if (e.engine == Engine::kDma && e.name.find("mm") != std::string::npos) {
      ++dma_for_h;
    }
  }
  EXPECT_EQ(dma_for_h, 1);
}

TEST(Scheduler, RecompileStallHappensOnceAndBlocks) {
  Graph g;
  const ValueId x = g.input(Shape{{16, 8}}, DType::F32, "x");
  const ValueId g1 = g.glu(x, /*requires_recompile=*/true, "glu1");
  const ValueId wide = g.add_op(OpKind::kBroadcastLast,
                                {g.reduce_sum(g1)}, [] {
                                  OpAttrs a;
                                  a.dim = 8;
                                  return a;
                                }(), "widen")[0];
  g.mark_output(g.glu(wide, true, "glu2"));

  const auto result = run_timing(g);
  int stalls = 0;
  sim::SimTime stall_end{};
  for (const auto& e : result.trace.events()) {
    if (e.engine == Engine::kHost) {
      ++stalls;
      stall_end = e.end;
      EXPECT_EQ(e.duration(), chip().compiler.recompile_stall);
    }
  }
  EXPECT_EQ(stalls, 1);  // compiled once, cached afterwards
  // Everything after the stall starts after it.
  for (const auto& e : result.trace.events()) {
    if (e.engine == Engine::kHost || e.start >= stall_end) continue;
    EXPECT_LE(e.end, stall_end);
  }
}

TEST(Scheduler, RunsAreDeterministic) {
  // Two runs of the same graph produce bit-identical traces — simulated
  // timing must not depend on host threading.
  const Graph g = mixed_graph();
  const auto a = run_timing(g, SchedulePolicy::kOverlap);
  const auto b = run_timing(g, SchedulePolicy::kOverlap);
  ASSERT_EQ(a.trace.events().size(), b.trace.events().size());
  for (std::size_t i = 0; i < a.trace.events().size(); ++i) {
    EXPECT_EQ(a.trace.events()[i].start.ps(), b.trace.events()[i].start.ps());
    EXPECT_EQ(a.trace.events()[i].end.ps(), b.trace.events()[i].end.ps());
    EXPECT_EQ(a.trace.events()[i].name, b.trace.events()[i].name);
  }
  EXPECT_EQ(a.hbm_peak_bytes, b.hbm_peak_bytes);
}

// ---------------------------------------------------------------------------
// Trace analysis
// ---------------------------------------------------------------------------

Trace make_trace() {
  Trace t;
  auto ev = [](Engine e, const char* name, double s, double d) {
    TraceEvent x;
    x.engine = e;
    x.name = name;
    x.start = sim::SimTime::from_ms(s);
    x.end = sim::SimTime::from_ms(s + d);
    return x;
  };
  t.add(ev(Engine::kMme, "mm1", 0.0, 2.0));
  t.add(ev(Engine::kTpc, "softmax", 2.0, 6.0));
  t.add(ev(Engine::kMme, "mm2", 8.0, 2.0));
  return t;
}

TEST(TraceAnalysis, BusyUtilizationGaps) {
  const Trace t = make_trace();
  EXPECT_DOUBLE_EQ(t.makespan().ms(), 10.0);
  EXPECT_DOUBLE_EQ(t.busy(Engine::kMme).ms(), 4.0);
  EXPECT_NEAR(t.utilization(Engine::kMme), 0.4, 1e-9);
  const auto gaps = t.gaps(Engine::kMme);
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(gaps[0].duration().ms(), 6.0);
  EXPECT_DOUBLE_EQ(t.busy_matching("softmax", Engine::kTpc).ms(), 6.0);
  EXPECT_DOUBLE_EQ(t.share_of_engine("softmax", Engine::kTpc), 1.0);
  EXPECT_EQ(t.busy_by_name(Engine::kMme).size(), 2u);
}

TEST(TraceAnalysis, ChromeJsonIsWellFormedish) {
  const std::string json = make_trace().to_chrome_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"softmax\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(TraceAnalysis, AsciiTimelineRendersRows) {
  const std::string art = make_trace().ascii_timeline(50);
  EXPECT_NE(art.find("MME"), std::string::npos);
  EXPECT_NE(art.find("TPC"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(TraceAnalysis, RejectsNegativeDurations) {
  Trace t;
  TraceEvent e;
  e.start = sim::SimTime::from_ms(2.0);
  e.end = sim::SimTime::from_ms(1.0);
  EXPECT_THROW(t.add(e), sim::InvalidArgument);
}

// Minimal JSON string unescaper for the round-trip test below.
std::string json_unescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char c = s[++i];
    switch (c) {
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u':
        out += static_cast<char>(std::stoi(s.substr(i + 1, 4), nullptr, 16));
        i += 4;
        break;
      default: out += c; break;
    }
  }
  return out;
}

TEST(TraceAnalysis, ChromeJsonRoundTripsHostileLabels) {
  // Tabs, carriage returns and raw control bytes show up in labels built
  // from user-provided layer names; the export must keep the JSON parseable.
  const std::string label = "evil\tname\rwith\nctl\x01\x1f \"quoted\" \\slash";
  Trace t;
  TraceEvent e;
  e.engine = Engine::kTpc;
  e.name = label;
  e.end = sim::SimTime::from_ms(1.0);
  t.add(e);

  const std::string json = t.to_chrome_json();
  // No raw control character may survive escaping anywhere in the document.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u) << "raw control byte";
  }
  EXPECT_NE(json.find("\\t"), std::string::npos);
  EXPECT_NE(json.find("\\r"), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u001f"), std::string::npos);
  // Unescaping recovers the original label byte-for-byte.
  EXPECT_NE(json_unescape(json).find(label), std::string::npos);
}

TEST(TraceAnalysis, ShareMatchingRespectsTokenBoundaries) {
  // A Fig 4-style attention trace with decoy names: "expand"/"exponent" must
  // not count toward the exp share, "offsets" not toward offset.
  Trace t;
  double at = 0.0;
  auto ev = [&](const char* name, double d) {
    TraceEvent x;
    x.engine = Engine::kTpc;
    x.name = name;
    x.start = sim::SimTime::from_ms(at);
    x.end = sim::SimTime::from_ms(at + d);
    at += d;
    t.add(x);
  };
  ev("h0.softmax", 8.0);
  ev("h0.q_exp", 1.0);
  ev("exp", 1.0);
  ev("h0.pre_scale_q", 0.5);
  ev("h0.q_offset", 0.5);
  ev("h0.expand", 3.0);
  ev("h0.exponent", 2.0);
  ev("h0.offsets", 1.0);  // 17 ms of TPC busy in total

  EXPECT_DOUBLE_EQ(t.busy_matching("exp", Engine::kTpc).ms(), 2.0);
  EXPECT_DOUBLE_EQ(t.busy_matching("offset", Engine::kTpc).ms(), 0.5);
  EXPECT_DOUBLE_EQ(t.busy_matching("pre_scale", Engine::kTpc).ms(), 0.5);
  EXPECT_NEAR(t.share_of_engine("softmax", Engine::kTpc), 8.0 / 17.0, 1e-12);

  const core::TraceSummary s = core::summarize(t);
  EXPECT_NEAR(s.softmax_share_of_tpc, 8.0 / 17.0, 1e-12);
  EXPECT_NEAR(s.exp_share_of_tpc, 3.0 / 17.0, 1e-12);
}

}  // namespace
}  // namespace gaudi::graph

// Baseline/regression tooling tests.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/baseline.hpp"

namespace gaudi::core {
namespace {

TraceSummary sample_summary() {
  TraceSummary s;
  s.makespan = sim::SimTime::from_ms(100.0);
  s.mme_busy = sim::SimTime::from_ms(60.0);
  s.tpc_busy = sim::SimTime::from_ms(30.0);
  s.mme_idle_fraction = 0.4;
  s.softmax_share_of_tpc = 0.9;
  s.engine_imbalance = 0.5;
  return s;
}

TEST(Baseline, RoundTripsThroughText) {
  const Baseline b = baseline_from(sample_summary());
  const Baseline parsed = parse_baseline(to_string(b));
  EXPECT_EQ(parsed.metrics.size(), b.metrics.size());
  for (const auto& [key, value] : b.metrics) {
    EXPECT_NEAR(parsed.metrics.at(key), value, 1e-9) << key;
  }
}

TEST(Baseline, ParserSkipsCommentsAndRejectsGarbage) {
  const Baseline b = parse_baseline("# comment\nmakespan_ms = 12.5\n\n");
  EXPECT_NEAR(b.metrics.at("makespan_ms"), 12.5, 1e-12);
  EXPECT_THROW(parse_baseline("no equals sign"), sim::InvalidArgument);
  EXPECT_THROW(parse_baseline("key = not_a_number"), sim::InvalidArgument);
  EXPECT_THROW(parse_baseline(" = 3"), sim::InvalidArgument);
}

TEST(Baseline, CompareFlagsDriftBeyondTolerance) {
  const Baseline base = baseline_from(sample_summary());
  Baseline drifted = base;
  drifted.metrics["makespan_ms"] *= 1.20;   // +20%
  drifted.metrics["tpc_busy_ms"] *= 1.02;   // +2% — inside tolerance

  const auto drifts = compare(base, drifted, 0.05);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].metric, "makespan_ms");
  EXPECT_NEAR(drifts[0].relative, 0.20, 1e-9);
  EXPECT_TRUE(compare(base, base).empty());
}

TEST(Baseline, CompareReportsMissingMetrics) {
  Baseline base;
  base.metrics["only_in_base"] = 1.0;
  Baseline cur;
  cur.metrics["only_in_current"] = 2.0;
  const auto drifts = compare(base, cur, 0.05);
  EXPECT_EQ(drifts.size(), 2u);
  for (const auto& d : drifts) EXPECT_TRUE(std::isinf(d.relative));
}

TEST(Baseline, SaveAndLoadFile) {
  const std::string path = "test_baseline_tmp.txt";
  const Baseline b = baseline_from(sample_summary());
  save_baseline(b, path);
  const Baseline loaded = load_baseline(path);
  EXPECT_TRUE(compare(b, loaded, 1e-9).empty());
  std::remove(path.c_str());
  EXPECT_THROW(load_baseline("does_not_exist.txt"), sim::InvalidArgument);
}

}  // namespace
}  // namespace gaudi::core

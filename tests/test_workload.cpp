// Synthetic-corpus tests: determinism, Zipf skew, batch/target plumbing.
#include <gtest/gtest.h>

#include "workload/corpus.hpp"

namespace gaudi::workload {
namespace {

TEST(Corpus, DeterministicPerSeed) {
  const SyntheticCorpus a({1000, 1.1, 42});
  const SyntheticCorpus b({1000, 1.1, 42});
  const SyntheticCorpus c({1000, 1.1, 43});
  bool any_diff = false;
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_EQ(a.token(i), b.token(i));
    any_diff = any_diff || a.token(i) != c.token(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Corpus, TokensWithinVocab) {
  const SyntheticCorpus corpus({313, 1.05, 7});
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const std::int32_t t = corpus.token(i);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 313);
  }
}

TEST(Corpus, ZipfSkewMatchesExponent) {
  // With s = 1.1 and V = 1000 the top token should hold roughly
  // 1/H_{V,s} ~ 13% of the mass; far more than uniform (0.1%).
  const SyntheticCorpus corpus({1000, 1.1, 11});
  const double top = corpus.top_token_frequency(50'000);
  EXPECT_GT(top, 0.08);
  EXPECT_LT(top, 0.25);
  // Near-uniform when s -> 0.
  const SyntheticCorpus flat({1000, 0.01, 11});
  EXPECT_LT(flat.top_token_frequency(50'000), 0.01);
}

TEST(Corpus, BatchShapeAndContent) {
  const SyntheticCorpus corpus({500, 1.1, 3});
  const tensor::Tensor ids = corpus.batch(4, 16, /*cursor=*/100);
  EXPECT_TRUE(ids.shape() == (tensor::Shape{{4, 16}}));
  EXPECT_EQ(ids.dtype(), tensor::DType::I32);
  EXPECT_EQ(ids.i32()[0], corpus.token(100));
  EXPECT_EQ(ids.i32()[63], corpus.token(163));
}

TEST(Corpus, NextTokenTargetsAreShiftedByOne) {
  const SyntheticCorpus corpus({500, 1.1, 3});
  const tensor::Tensor ids = corpus.batch(2, 8, 0);
  const tensor::Tensor targets = corpus.next_token_targets(2, 8, 0);
  EXPECT_TRUE(targets.shape() == (tensor::Shape{{16}}));
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(targets.i32()[i], ids.i32()[i + 1]);
  }
}

TEST(Corpus, RejectsDegenerateVocab) {
  EXPECT_THROW(SyntheticCorpus({1, 1.1, 0}), sim::InvalidArgument);
}

}  // namespace
}  // namespace gaudi::workload

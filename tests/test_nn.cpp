// Model-library tests: layers, the three attention mechanisms, transformer
// layers and the end-to-end language models — functional correctness against
// closed-form references at miniature scale.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/runtime.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "workload/corpus.hpp"

namespace gaudi::nn {
namespace {

namespace ops = gaudi::tensor::ops;
using graph::Graph;
using graph::RunOptions;
using graph::Runtime;
using graph::ValueId;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

graph::ProfileResult run_functional(
    const Graph& g, const std::unordered_map<ValueId, Tensor>& feeds) {
  Runtime rt;
  RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  return rt.run(g, feeds, opts);
}

TEST(ParamStore, CreatesAndInitializes) {
  Graph g;
  ParamStore store(7);
  const ValueId w = store.create(g, Shape{{4, 4}}, "w", Init::kNormal, 0.1f);
  const ValueId ones = store.create(g, Shape{{4}}, "ones", Init::kOnes);
  const ValueId z = store.create(g, Shape{{4}}, "z", Init::kZeros);
  const ValueId buf = store.create(g, Shape{{2}}, "buf", Init::kUniform, 0.5f);
  store.mark_buffer(buf);

  EXPECT_EQ(store.count(), 4u);
  EXPECT_EQ(store.trainable().size(), 3u);
  const auto feeds = store.init_feeds(g);
  EXPECT_EQ(feeds.size(), 4u);
  for (float v : feeds.at(ones).f32()) EXPECT_EQ(v, 1.0f);
  for (float v : feeds.at(z).f32()) EXPECT_EQ(v, 0.0f);
  double sq = 0.0;
  for (float v : feeds.at(w).f32()) sq += static_cast<double>(v) * v;
  EXPECT_LT(std::sqrt(sq / 16.0), 0.4);  // stddev ~0.1
  EXPECT_NE(feeds.at(w).f32()[0], feeds.at(w).f32()[1]);
}

TEST(ParamStore, DifferentSeedsDifferentInits) {
  Graph g1, g2;
  ParamStore s1(1), s2(2);
  const ValueId w1 = s1.create(g1, Shape{{8}}, "w", Init::kNormal);
  const ValueId w2 = s2.create(g2, Shape{{8}}, "w", Init::kNormal);
  EXPECT_GT(ops::max_abs_diff(s1.init_feeds(g1).at(w1), s2.init_feeds(g2).at(w2)),
            0.0);
}

TEST(Linear, ComputesAffineMap) {
  Graph g;
  ParamStore params(3);
  Linear lin(g, params, 6, 4, "lin");
  const ValueId x = g.input(Shape{{5, 6}}, DType::F32, "x");
  const ValueId y = lin(g, x);
  g.mark_output(y);

  auto feeds = params.init_feeds(g);
  const Tensor xv = Tensor::uniform(Shape{{5, 6}}, sim::CounterRng{11});
  feeds.emplace(x, xv);
  const auto result = run_functional(g, feeds);
  const Tensor expect = ops::add_rowvec(
      ops::matmul(xv, feeds.at(lin.weight())), feeds.at(lin.bias()));
  EXPECT_LT(ops::max_abs_diff(result.outputs.at(y), expect), 1e-5);
}

TEST(Activations, AllVariantsBuildAndMatchReference) {
  struct Case {
    Activation act;
    Tensor (*ref)(const Tensor&);
  };
  const Case cases[] = {
      {Activation::kRelu, +[](const Tensor& t) { return ops::relu(t); }},
      {Activation::kGelu, +[](const Tensor& t) { return ops::gelu(t); }},
      {Activation::kElu, +[](const Tensor& t) { return ops::elu(t, 1.0f); }},
      {Activation::kSigmoid, +[](const Tensor& t) { return ops::sigmoid(t); }},
      {Activation::kTanh, +[](const Tensor& t) { return ops::tanh(t); }},
  };
  for (const auto& c : cases) {
    Graph g;
    const ValueId x = g.input(Shape{{3, 16}}, DType::F32, "x");
    const ValueId y = apply_activation(g, c.act, x, "act");
    g.mark_output(y);
    const Tensor xv =
        Tensor::uniform(Shape{{3, 16}}, sim::CounterRng{13}, -2.0f, 2.0f);
    const auto result = run_functional(g, {{x, xv}});
    EXPECT_LT(ops::max_abs_diff(result.outputs.at(y), c.ref(xv)), 1e-5)
        << activation_name(c.act);
  }
}

// ---------------------------------------------------------------------------
// Attention mechanisms
// ---------------------------------------------------------------------------

struct AttentionFixture {
  static constexpr std::int64_t kB = 2, kH = 2, kN = 8, kD = 4;
  Graph g;
  ParamStore params{17};
  ValueId q, k, v;
  Tensor qv, kv, vv;

  AttentionFixture() {
    q = g.input(Shape{{kB, kH, kN, kD}}, DType::F32, "q");
    k = g.input(Shape{{kB, kH, kN, kD}}, DType::F32, "k");
    v = g.input(Shape{{kB, kH, kN, kD}}, DType::F32, "v");
    const sim::CounterRng rng(23);
    qv = Tensor::uniform(Shape{{kB, kH, kN, kD}}, rng.stream(1), -1.0f, 1.0f);
    kv = Tensor::uniform(Shape{{kB, kH, kN, kD}}, rng.stream(2), -1.0f, 1.0f);
    vv = Tensor::uniform(Shape{{kB, kH, kN, kD}}, rng.stream(3), -1.0f, 1.0f);
  }

  Tensor run(const AttentionConfig& cfg) {
    const ValueId out = build_attention(g, params, cfg, q, k, v, "attn");
    g.mark_output(out);
    auto feeds = params.init_feeds(g);
    feeds.emplace(q, qv);
    feeds.emplace(k, kv);
    feeds.emplace(v, vv);
    return run_functional(g, feeds).outputs.at(out);
  }
};

TEST(Attention, SoftmaxMatchesClosedForm) {
  AttentionFixture fx;
  AttentionConfig cfg;
  cfg.kind = AttentionKind::kSoftmax;
  const Tensor out = fx.run(cfg);

  const Tensor scores = ops::matmul(
      ops::mul_scalar(fx.qv, 1.0f / std::sqrt(4.0f)), ops::transpose_last2(fx.kv));
  const Tensor expect = ops::matmul(ops::softmax_lastdim(scores), fx.vv);
  EXPECT_LT(ops::max_abs_diff(out, expect), 1e-5);
}

TEST(Attention, SoftmaxRespectsAdditiveMask) {
  AttentionFixture fx;
  AttentionConfig cfg;
  cfg.kind = AttentionKind::kSoftmax;
  const ValueId mask = fx.g.input(
      Shape{{AttentionFixture::kN, AttentionFixture::kN}}, DType::F32, "mask");
  cfg.additive_mask = mask;
  const ValueId out =
      build_attention(fx.g, fx.params, cfg, fx.q, fx.k, fx.v, "attn");
  fx.g.mark_output(out);
  auto feeds = fx.params.init_feeds(fx.g);
  feeds.emplace(fx.q, fx.qv);
  feeds.emplace(fx.k, fx.kv);
  feeds.emplace(fx.v, fx.vv);
  feeds.emplace(mask, make_causal_mask(AttentionFixture::kN));
  const Tensor outv = run_functional(fx.g, feeds).outputs.at(out);

  // Row 0 can only attend to position 0 -> output row 0 == v row 0.
  for (std::int64_t b = 0; b < 2; ++b) {
    for (std::int64_t h = 0; h < 2; ++h) {
      const std::int64_t base = ((b * 2 + h) * 8 + 0) * 4;
      for (std::int64_t d = 0; d < 4; ++d) {
        EXPECT_NEAR(outv.f32()[static_cast<std::size_t>(base + d)],
                    fx.vv.f32()[static_cast<std::size_t>(base + d)], 1e-5f);
      }
    }
  }
}

TEST(Attention, LinearMatchesExplicitKernelForm) {
  // phi-attention equals the O(N^2) form:
  // out_i = sum_j phi(q_i)·phi(k_j) v_j / sum_j phi(q_i)·phi(k_j)
  AttentionFixture fx;
  AttentionConfig cfg;
  cfg.kind = AttentionKind::kLinear;
  cfg.feature_map = Activation::kElu;
  const Tensor out = fx.run(cfg);

  auto phi = [](const Tensor& t) { return ops::add_scalar(ops::elu(t, 1.0f), 1.0f); };
  const Tensor qp = phi(fx.qv);
  const Tensor kp = phi(fx.kv);
  const Tensor sims = ops::matmul(qp, ops::transpose_last2(kp));  // [B,H,N,N]
  const Tensor num = ops::matmul(sims, fx.vv);
  const Tensor den = ops::sum_lastdim(sims);
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const float expect = num.f32()[idx] / den.f32()[static_cast<std::size_t>(i / 4)];
    EXPECT_NEAR(out.f32()[idx], expect, 1e-4f);
  }
}

TEST(Attention, PerformerApproximatesSoftmaxRanking) {
  // FAVOR is an unbiased softmax-kernel approximation; with enough features
  // the outputs correlate strongly with exact softmax attention.
  AttentionFixture fx;
  AttentionConfig exact_cfg;
  exact_cfg.kind = AttentionKind::kSoftmax;
  AttentionFixture fx2;
  AttentionConfig favor_cfg;
  favor_cfg.kind = AttentionKind::kPerformer;
  favor_cfg.performer_features = 512;

  const Tensor exact = fx.run(exact_cfg);
  const Tensor approx = fx2.run(favor_cfg);

  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::int64_t i = 0; i < exact.numel(); ++i) {
    const auto idx = static_cast<std::size_t>(i);
    dot += static_cast<double>(exact.f32()[idx]) * approx.f32()[idx];
    na += static_cast<double>(exact.f32()[idx]) * exact.f32()[idx];
    nb += static_cast<double>(approx.f32()[idx]) * approx.f32()[idx];
  }
  const double cosine = dot / std::sqrt(na * nb);
  EXPECT_GT(cosine, 0.8);
}

TEST(Attention, PerformerRowsAreConvexCombinations) {
  // q', k' are positive (exp features), so attention weights are positive
  // and rows of the output stay within the convex hull of V's coordinates.
  AttentionFixture fx;
  AttentionConfig cfg;
  cfg.kind = AttentionKind::kPerformer;
  cfg.performer_features = 64;
  const Tensor out = fx.run(cfg);
  float vmin = 1e9f, vmax = -1e9f;
  for (float x : fx.vv.f32()) {
    vmin = std::min(vmin, x);
    vmax = std::max(vmax, x);
  }
  for (float x : out.f32()) {
    EXPECT_GE(x, vmin - 1e-4f);
    EXPECT_LE(x, vmax + 1e-4f);
  }
}

TEST(Attention, LinformerMatchesClosedForm) {
  // out = softmax(Q (E K)^T / sqrt(D)) (F V), with E = e_proj^T, F = f_proj^T.
  AttentionFixture fx;
  AttentionConfig cfg;
  cfg.kind = AttentionKind::kLinformer;
  cfg.linformer_k = 4;
  const ValueId out_id =
      build_attention(fx.g, fx.params, cfg, fx.q, fx.k, fx.v, "attn");
  fx.g.mark_output(out_id);
  auto feeds = fx.params.init_feeds(fx.g);
  feeds.emplace(fx.q, fx.qv);
  feeds.emplace(fx.k, fx.kv);
  feeds.emplace(fx.v, fx.vv);
  const Tensor out = run_functional(fx.g, feeds).outputs.at(out_id);

  // Locate the projection params by name.
  Tensor e_proj, f_proj;
  for (graph::ValueId p : fx.params.params()) {
    if (fx.g.value(p).name == "attn.E") e_proj = feeds.at(p);
    if (fx.g.value(p).name == "attn.F") f_proj = feeds.at(p);
  }
  ASSERT_TRUE(e_proj.defined());

  const Tensor ek = ops::transpose_last2(ops::matmul(
      ops::transpose_last2(fx.kv), e_proj));  // E K : [B,H,k,D]
  const Tensor fv =
      ops::transpose_last2(ops::matmul(ops::transpose_last2(fx.vv), f_proj));
  const Tensor scores = ops::matmul(ops::mul_scalar(fx.qv, 0.5f),  // 1/sqrt(4)
                                    ops::transpose_last2(ek));
  const Tensor expect = ops::matmul(ops::softmax_lastdim(scores), fv);
  EXPECT_LT(ops::max_abs_diff(out, expect), 1e-4);
}

TEST(Attention, LocalAttentionIsBlockDiagonal) {
  AttentionFixture fx;  // N = 8
  AttentionConfig cfg;
  cfg.kind = AttentionKind::kLocal;
  cfg.local_window = 4;
  const Tensor out = fx.run(cfg);

  // Reference: softmax attention computed separately per 4-wide block.
  constexpr std::int64_t kB = AttentionFixture::kB, kH = AttentionFixture::kH,
                         kN = AttentionFixture::kN, kD = AttentionFixture::kD;
  for (std::int64_t b = 0; b < kB; ++b) {
    for (std::int64_t h = 0; h < kH; ++h) {
      for (std::int64_t blk = 0; blk < kN / 4; ++blk) {
        const std::int64_t base = ((b * kH + h) * kN + blk * 4) * kD;
        auto slice = [&](const Tensor& t) {
          return Tensor::from_values(
              Shape{{4, kD}},
              std::span<const float>(t.f32().data() + base, 4 * kD));
        };
        const Tensor qs = slice(fx.qv);
        const Tensor ks = slice(fx.kv);
        const Tensor vs = slice(fx.vv);
        const Tensor scores = ops::matmul(ops::mul_scalar(qs, 0.5f),
                                          ops::transpose_last2(ks));
        const Tensor expect = ops::matmul(ops::softmax_lastdim(scores), vs);
        for (std::int64_t i = 0; i < 4 * kD; ++i) {
          EXPECT_NEAR(out.f32()[static_cast<std::size_t>(base + i)],
                      expect.f32()[static_cast<std::size_t>(i)], 1e-5f);
        }
      }
    }
  }
}

TEST(Attention, LocalAttentionRequiresDivisibleWindow) {
  AttentionFixture fx;
  AttentionConfig cfg;
  cfg.kind = AttentionKind::kLocal;
  cfg.local_window = 3;  // does not divide N = 8
  EXPECT_THROW(build_attention(fx.g, fx.params, cfg, fx.q, fx.k, fx.v, "attn"),
               sim::InvalidArgument);
}

TEST(MultiHeadAttention, PreservesShapeAndRunsAllKinds) {
  for (const auto kind : {AttentionKind::kSoftmax, AttentionKind::kLinear,
                          AttentionKind::kPerformer, AttentionKind::kLinformer,
                          AttentionKind::kLocal}) {
    Graph g;
    ParamStore params(29);
    AttentionConfig cfg;
    cfg.kind = kind;
    cfg.performer_features = 8;
    cfg.linformer_k = 3;
    cfg.local_window = 3;  // divides seq_len = 6
    MultiHeadAttention mha(g, params, 16, 2, 8, cfg, "mha");
    const ValueId x = g.input(Shape{{2 * 6, 16}}, DType::F32, "x");
    const ValueId y = mha(g, params, x, 2, 6);
    g.mark_output(y);
    EXPECT_TRUE(g.value(y).shape == (Shape{{12, 16}}));

    auto feeds = params.init_feeds(g);
    feeds.emplace(x, Tensor::uniform(Shape{{12, 16}}, sim::CounterRng{31}));
    const auto result = run_functional(g, feeds);
    for (float v : result.outputs.at(y).f32()) {
      EXPECT_FALSE(std::isnan(v)) << attention_kind_name(kind);
    }
  }
}

TEST(MultiHeadAttention, RejectsWrongInputShape) {
  Graph g;
  ParamStore params(1);
  MultiHeadAttention mha(g, params, 16, 2, 8, {}, "mha");
  const ValueId x = g.input(Shape{{13, 16}}, DType::F32, "x");
  EXPECT_THROW(mha(g, params, x, 2, 6), sim::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Transformer layer
// ---------------------------------------------------------------------------

TEST(TransformerLayer, AttentionOnlyAndWithFfn) {
  for (const std::int64_t ffn : {std::int64_t{0}, std::int64_t{32}}) {
    Graph g;
    ParamStore params(37);
    TransformerLayerConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.head_dim = 8;
    cfg.ffn_dim = ffn;
    TransformerLayer layer(g, params, cfg, "layer");
    const ValueId x = g.input(Shape{{8, 16}}, DType::F32, "x");
    const ValueId y = layer(g, params, x, 2, 4);
    g.mark_output(y);
    EXPECT_TRUE(g.value(y).shape == (Shape{{8, 16}}));

    auto feeds = params.init_feeds(g);
    feeds.emplace(x, Tensor::uniform(Shape{{8, 16}}, sim::CounterRng{41}));
    const auto result = run_functional(g, feeds);
    // Post-LN output: every row is normalized.
    const Tensor& out = result.outputs.at(y);
    for (int r = 0; r < 8; ++r) {
      double mean = 0.0;
      for (int j = 0; j < 16; ++j) mean += out.f32()[r * 16 + j];
      EXPECT_NEAR(mean / 16.0, 0.0, 1e-3);
    }
  }
}

TEST(TransformerLayer, GluFfnDoublesInnerProjection) {
  Graph g;
  ParamStore params(43);
  TransformerLayerConfig cfg;
  cfg.d_model = 16;
  cfg.heads = 2;
  cfg.head_dim = 8;
  cfg.ffn_dim = 32;
  cfg.ffn_activation = Activation::kGlu;
  TransformerLayer layer(g, params, cfg, "layer");
  const ValueId x = g.input(Shape{{4, 16}}, DType::F32, "x");
  g.mark_output(layer(g, params, x, 1, 4));
  // ffn_in weight is [16, 64]: GLU halves 64 back to 32.
  bool found = false;
  for (ValueId p : params.params()) {
    if (g.value(p).name == "layer.ffn_in.weight") {
      EXPECT_TRUE(g.value(p).shape == (Shape{{16, 64}}));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// End-to-end language models
// ---------------------------------------------------------------------------

TEST(LanguageModel, TinyGptForwardAndLossNearUniform) {
  Graph g;
  const LmConfig cfg = LmConfig::tiny(LmArch::kGpt2);
  const LanguageModel model = build_language_model(g, cfg);

  auto feeds = model.params.init_feeds(g);
  const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 99});
  feeds.emplace(model.token_ids, corpus.batch(cfg.batch, cfg.seq_len));
  feeds.emplace(model.targets, corpus.next_token_targets(cfg.batch, cfg.seq_len));
  feeds.emplace(model.causal_mask, make_causal_mask(cfg.seq_len));

  const auto result = run_functional(g, feeds);
  const double loss = result.outputs.at(model.loss).at(0);
  // Near-random initialization: loss ~ ln(vocab).
  EXPECT_NEAR(loss, std::log(static_cast<double>(cfg.vocab)), 0.5);
  EXPECT_TRUE(result.outputs.at(model.logits).shape() ==
              (Shape{{cfg.tokens(), cfg.vocab}}));
}

TEST(LanguageModel, TinyBertForwardAndLoss) {
  Graph g;
  const LmConfig cfg = LmConfig::tiny(LmArch::kBert);
  const LanguageModel model = build_language_model(g, cfg);
  EXPECT_EQ(model.causal_mask, graph::kInvalidValue);  // BERT is bidirectional

  auto feeds = model.params.init_feeds(g);
  const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 77});
  feeds.emplace(model.token_ids, corpus.batch(cfg.batch, cfg.seq_len));
  feeds.emplace(model.targets, corpus.next_token_targets(cfg.batch, cfg.seq_len));
  const auto result = run_functional(g, feeds);
  EXPECT_NEAR(result.outputs.at(model.loss).at(0),
              std::log(static_cast<double>(cfg.vocab)), 0.5);
}

TEST(LanguageModel, TrainingStepProducesNonTrivialGradients) {
  Graph g;
  const LmConfig cfg = LmConfig::tiny(LmArch::kGpt2);
  const LanguageModel model = build_language_model(g, cfg);
  EXPECT_EQ(model.grad_values.size(), model.params.trainable().size());

  auto feeds = model.params.init_feeds(g);
  const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 55});
  feeds.emplace(model.token_ids, corpus.batch(cfg.batch, cfg.seq_len));
  feeds.emplace(model.targets, corpus.next_token_targets(cfg.batch, cfg.seq_len));
  feeds.emplace(model.causal_mask, make_causal_mask(cfg.seq_len));
  const auto result = run_functional(g, feeds);

  int nonzero_grads = 0;
  for (const ValueId gv : model.grad_values) {
    const Tensor& grad = result.outputs.at(gv);
    double norm = 0.0;
    for (float x : grad.f32()) {
      ASSERT_FALSE(std::isnan(x));
      norm += static_cast<double>(x) * x;
    }
    // Strictly nonzero; q/k projection gradients legitimately *vanish*
    // (to ~1e-17 norms) at small init because near-zero scores make softmax
    // near-uniform, but they never cancel exactly on a real batch.
    if (norm > 0.0) ++nonzero_grads;
  }
  EXPECT_EQ(nonzero_grads, static_cast<int>(model.grad_values.size()));
}

TEST(LanguageModel, GradientDescentReducesLoss) {
  Graph g;
  LmConfig cfg = LmConfig::tiny(LmArch::kGpt2);
  cfg.n_layers = 1;
  const LanguageModel model = build_language_model(g, cfg);

  auto feeds = model.params.init_feeds(g);
  const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 33});
  feeds.emplace(model.token_ids, corpus.batch(cfg.batch, cfg.seq_len));
  feeds.emplace(model.targets, corpus.next_token_targets(cfg.batch, cfg.seq_len));
  feeds.emplace(model.causal_mask, make_causal_mask(cfg.seq_len));

  Runtime rt;
  RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;

  const auto step = [&]() {
    const auto result = rt.run(g, feeds, opts);
    const double loss = result.outputs.at(model.loss).at(0);
    const auto trainable = model.params.trainable();
    for (std::size_t i = 0; i < trainable.size(); ++i) {
      Tensor& p = feeds.at(trainable[i]);
      const Tensor& grad = result.outputs.at(model.grad_values[i]);
      for (std::int64_t j = 0; j < p.numel(); ++j) {
        const auto idx = static_cast<std::size_t>(j);
        p.f32()[idx] -= 0.5f * grad.f32()[idx];
      }
    }
    return loss;
  };

  const double l0 = step();
  double l = l0;
  for (int i = 0; i < 4; ++i) l = step();
  EXPECT_LT(l, l0 - 0.05);  // same batch: SGD must make progress
}

TEST(LanguageModel, TrainsWithEfficientAttentionMechanisms) {
  // The batch-reduced matmul gradients make every attention variant
  // trainable end-to-end; verify gradients flow and SGD makes progress.
  for (const auto kind : {AttentionKind::kLinear, AttentionKind::kLinformer,
                          AttentionKind::kLocal}) {
    Graph g;
    LmConfig cfg = LmConfig::tiny(LmArch::kBert);
    cfg.n_layers = 1;
    cfg.attention.kind = kind;
    cfg.attention.linformer_k = 8;
    cfg.attention.local_window = 8;
    const LanguageModel model = build_language_model(g, cfg);

    auto feeds = model.params.init_feeds(g);
    const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 61});
    feeds.emplace(model.token_ids, corpus.batch(cfg.batch, cfg.seq_len));
    feeds.emplace(model.targets,
                  corpus.next_token_targets(cfg.batch, cfg.seq_len));

    Runtime rt;
    RunOptions opts;
    opts.mode = tpc::ExecMode::kFunctional;
    const auto trainable = model.params.trainable();

    double first = 0.0, last = 0.0;
    for (int it = 0; it < 4; ++it) {
      const auto result = rt.run(g, feeds, opts);
      last = result.outputs.at(model.loss).at(0);
      ASSERT_FALSE(std::isnan(last)) << attention_kind_name(kind);
      if (it == 0) first = last;
      for (std::size_t i = 0; i < trainable.size(); ++i) {
        Tensor& p = feeds.at(trainable[i]);
        const Tensor& grad = result.outputs.at(model.grad_values[i]);
        for (std::int64_t j = 0; j < p.numel(); ++j) {
          p.f32()[static_cast<std::size_t>(j)] -=
              0.4f * grad.f32()[static_cast<std::size_t>(j)];
        }
      }
    }
    EXPECT_LT(last, first - 0.02) << attention_kind_name(kind);
  }
}

TEST(LanguageModel, PaperConfigsMatchSection34) {
  const LmConfig gpt = LmConfig::gpt2_paper();
  EXPECT_EQ(gpt.seq_len, 2048);
  EXPECT_EQ(gpt.batch, 8);
  EXPECT_EQ(gpt.n_layers, 2);
  EXPECT_EQ(gpt.heads, 8);
  EXPECT_EQ(gpt.head_dim, 64);
  EXPECT_EQ(gpt.d_model(), 512);
  const LmConfig bert = LmConfig::bert_paper();
  EXPECT_EQ(bert.vocab, 30522);
  EXPECT_EQ(bert.arch, LmArch::kBert);
}

TEST(LanguageModel, ParamCountScalesWithConfig) {
  Graph g1, g2;
  const LanguageModel small = build_language_model(g1, LmConfig::tiny(LmArch::kGpt2));
  LmConfig bigger = LmConfig::tiny(LmArch::kGpt2);
  bigger.n_layers = 4;
  const LanguageModel big = build_language_model(g2, bigger);
  EXPECT_GT(big.param_count(g2), small.param_count(g1));
}

}  // namespace
}  // namespace gaudi::nn

// Optimizer tests: kernel numerics against closed-form references, graph
// plumbing, and full on-device training loops that must converge.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/runtime.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"
#include "workload/corpus.hpp"

namespace gaudi::nn {
namespace {

namespace ops = gaudi::tensor::ops;
using graph::ValueId;
using tensor::Shape;
using tensor::Tensor;

tpc::TpcCluster cluster() { return tpc::TpcCluster(sim::ChipConfig::hls1().tpc); }

TEST(SgdKernel, PlainUpdateMatchesReference) {
  const Tensor p = Tensor::uniform(Shape{{300}}, sim::CounterRng{1}, -1.0f, 1.0f);
  const Tensor g = Tensor::uniform(Shape{{300}}, sim::CounterRng{2}, -1.0f, 1.0f);
  Tensor p_out = Tensor::zeros(Shape{{300}});
  cluster().run(tpc::SgdUpdateKernel(p, g, p_out, {}, {}, 0.1f, 0.0f),
                tpc::ExecMode::kFunctional);
  const Tensor expect = ops::sub(p, ops::mul_scalar(g, 0.1f));
  EXPECT_LT(ops::max_abs_diff(p_out, expect), 1e-6);
}

TEST(SgdKernel, MomentumAccumulates) {
  const Tensor p = Tensor::full(Shape{{64}}, 1.0f);
  const Tensor g = Tensor::full(Shape{{64}}, 1.0f);
  const Tensor vel = Tensor::full(Shape{{64}}, 2.0f);
  Tensor p_out = Tensor::zeros(Shape{{64}});
  Tensor vel_out = Tensor::zeros(Shape{{64}});
  cluster().run(tpc::SgdUpdateKernel(p, g, p_out, vel, vel_out, 0.1f, 0.5f),
                tpc::ExecMode::kFunctional);
  // vel' = 0.5*2 + 1 = 2; p' = 1 - 0.1*2 = 0.8
  for (float v : vel_out.f32()) EXPECT_NEAR(v, 2.0f, 1e-6f);
  for (float v : p_out.f32()) EXPECT_NEAR(v, 0.8f, 1e-6f);
}

TEST(AdamKernel, MatchesReferenceFormula) {
  const std::int64_t n = 200;
  const Tensor p = Tensor::uniform(Shape{{n}}, sim::CounterRng{3}, -1.0f, 1.0f);
  const Tensor g = Tensor::uniform(Shape{{n}}, sim::CounterRng{4}, -1.0f, 1.0f);
  const Tensor m = Tensor::uniform(Shape{{n}}, sim::CounterRng{5}, -0.1f, 0.1f);
  const Tensor v = Tensor::uniform(Shape{{n}}, sim::CounterRng{6}, 0.0f, 0.1f);
  Tensor p_out = Tensor::zeros(Shape{{n}});
  Tensor m_out = Tensor::zeros(Shape{{n}});
  Tensor v_out = Tensor::zeros(Shape{{n}});
  const float lr = 0.01f, b1 = 0.9f, b2 = 0.999f, eps = 1e-8f;
  const std::int64_t step = 7;
  cluster().run(tpc::AdamUpdateKernel(p, g, m, v, p_out, m_out, v_out, lr, b1, b2,
                                      eps, step),
                tpc::ExecMode::kFunctional);

  const float alpha = lr * std::sqrt(1.0f - std::pow(b2, 7.0f)) /
                      (1.0f - std::pow(b1, 7.0f));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const float em = b1 * m.f32()[idx] + (1.0f - b1) * g.f32()[idx];
    const float ev = b2 * v.f32()[idx] + (1.0f - b2) * g.f32()[idx] * g.f32()[idx];
    const float ep = p.f32()[idx] - alpha * em / (std::sqrt(ev) + eps);
    EXPECT_NEAR(m_out.f32()[idx], em, 1e-6f);
    EXPECT_NEAR(v_out.f32()[idx], ev, 1e-6f);
    EXPECT_NEAR(p_out.f32()[idx], ep, 1e-5f);
  }
}

TEST(AdamKernel, RejectsInvalidStep) {
  const Tensor t = Tensor::zeros(Shape{{8}});
  EXPECT_THROW(tpc::AdamUpdateKernel(t, t, t, t, t, t, t, 0.1f, 0.9f, 0.999f,
                                     1e-8f, 0),
               sim::InvalidArgument);
}

TEST(OptimizerGraph, UpdatesRunOnTpc) {
  graph::Graph g;
  LmConfig cfg = LmConfig::tiny(LmArch::kGpt2);
  cfg.n_layers = 1;
  const LanguageModel model = build_language_model(g, cfg);
  OptimizerConfig ocfg;
  ocfg.kind = OptimizerKind::kAdam;
  const OptimizerState opt = append_optimizer(g, model, ocfg);
  EXPECT_EQ(opt.slots.size(), model.params.trainable().size());

  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  const auto result = rt.run(g, {}, opts);
  EXPECT_GT(result.trace.busy_matching("adam", graph::Engine::kTpc),
            sim::SimTime::zero());
  EXPECT_EQ(result.trace.busy_matching("adam", graph::Engine::kMme),
            sim::SimTime::zero());
}

TEST(OptimizerGraph, RequiresTrainingGraph) {
  graph::Graph g;
  LmConfig cfg = LmConfig::tiny(LmArch::kBert);
  cfg.training = false;
  const LanguageModel model = build_language_model(g, cfg);
  EXPECT_THROW(append_optimizer(g, model, {}), sim::InvalidArgument);
}

/// Full device-side training loop: run graph, feed updated params/state
/// back, assert convergence.  Parameterized over optimizers.
class OnDeviceTraining : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OnDeviceTraining, LossDecreasesOverIterations) {
  graph::Graph g;
  LmConfig cfg = LmConfig::tiny(GetParam() == OptimizerKind::kAdam
                                    ? LmArch::kBert
                                    : LmArch::kGpt2);
  cfg.n_layers = 1;
  const LanguageModel model = build_language_model(g, cfg);
  OptimizerConfig ocfg;
  ocfg.kind = GetParam();
  ocfg.lr = GetParam() == OptimizerKind::kAdam ? 0.01f : 0.4f;
  const OptimizerState opt = append_optimizer(g, model, ocfg);

  auto feeds = model.params.init_feeds(g);
  const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 21});
  feeds.emplace(model.token_ids, corpus.batch(cfg.batch, cfg.seq_len));
  feeds.emplace(model.targets, corpus.next_token_targets(cfg.batch, cfg.seq_len));
  if (model.causal_mask != graph::kInvalidValue) {
    feeds.emplace(model.causal_mask, make_causal_mask(cfg.seq_len));
  }
  for (auto& [v, t] : opt.initial_state(g)) feeds.emplace(v, t);

  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;

  double first = 0.0, last = 0.0;
  for (int it = 0; it < 5; ++it) {
    const auto result = rt.run(g, feeds, opts);
    last = result.outputs.at(model.loss).at(0);
    if (it == 0) first = last;
    // Feed updated parameters and optimizer state back in.
    for (const OptimizerSlot& slot : opt.slots) {
      feeds[slot.param] = result.outputs.at(slot.new_param);
      if (slot.vel_out != graph::kInvalidValue) {
        feeds[slot.vel_in] = result.outputs.at(slot.vel_out);
      }
      if (slot.m_out != graph::kInvalidValue) {
        feeds[slot.m_in] = result.outputs.at(slot.m_out);
        feeds[slot.v_in] = result.outputs.at(slot.v_out);
      }
    }
  }
  EXPECT_LT(last, first - 0.02)
      << optimizer_kind_name(GetParam()) << ": " << first << " -> " << last;
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OnDeviceTraining,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kSgdMomentum,
                                           OptimizerKind::kAdam),
                         [](const auto& suite_info) {
                           return std::string(optimizer_kind_name(suite_info.param));
                         });

}  // namespace
}  // namespace gaudi::nn

// Crash-consistent checkpoint tests: on-disk round trips, the kill-at-every-
// step bitwise resume invariant, fuzzed corruption (bit flips, truncations,
// lost commits) that must never load silently, the simulated torn-write
// window, typed rejection errors, and the state-restore accessors.
#include <gtest/gtest.h>

#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/optimizer.hpp"
#include "nn/train.hpp"
#include "scaleout/snapshot.hpp"
#include "sim/error.hpp"
#include "sim/fault.hpp"
#include "sim/numerics.hpp"
#include "tensor/tensor.hpp"

namespace gaudi {
namespace {

namespace fs = std::filesystem;
using scaleout::Snapshot;
using scaleout::SnapshotReject;
using scaleout::SnapshotScan;
using tensor::Tensor;

/// Unique scratch directory, removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_((fs::temp_directory_path() /
               ("gaudisim-snap-" + tag + "-" + std::to_string(::getpid())))
                  .string()) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Snapshot sample_snapshot(std::uint64_t step) {
  Snapshot s;
  s.step = step;
  s.add_meta("train.seed", 0x7A11);
  s.add_meta("scale_bits", std::bit_cast<std::uint32_t>(1024.0f));
  s.add("w", Tensor::uniform(tensor::Shape{{4, 3}}, sim::CounterRng{11, step}));
  s.add("b", Tensor::normal(tensor::Shape{{7}}, sim::CounterRng{22, step}));
  s.add("ids", Tensor::random_tokens(tensor::Shape{{5}},
                                     sim::CounterRng{33, step}, 97));
  return s;
}

std::string manifest_of(const std::string& dir, std::uint64_t step) {
  return (fs::path(dir) / (scaleout::snapshot_basename(step) + ".manifest"))
      .string();
}
std::string data_of(const std::string& dir, std::uint64_t step) {
  return (fs::path(dir) / (scaleout::snapshot_basename(step) + ".gsnap"))
      .string();
}

// ---------------------------------------------------------------------------
// Format round trips

TEST(SnapshotFormat, SaveLoadSaveIsByteIdentical) {
  TempDir a("roundtrip-a"), b("roundtrip-b");
  const Snapshot orig = sample_snapshot(7);
  const std::string manifest = scaleout::save_snapshot(a.path(), orig);
  const Snapshot loaded = scaleout::load_snapshot(manifest);

  EXPECT_EQ(loaded.step, 7u);
  EXPECT_EQ(loaded.require_meta("train.seed"), 0x7A11u);
  ASSERT_EQ(loaded.sections.size(), orig.sections.size());
  for (std::size_t i = 0; i < orig.sections.size(); ++i) {
    EXPECT_EQ(loaded.sections[i].name, orig.sections[i].name);
  }

  scaleout::save_snapshot(b.path(), loaded);
  EXPECT_EQ(slurp(data_of(a.path(), 7)), slurp(data_of(b.path(), 7)));
  EXPECT_EQ(slurp(manifest_of(a.path(), 7)), slurp(manifest_of(b.path(), 7)));
}

TEST(SnapshotFormat, PayloadBytesMatchesFileAndBackedConfig) {
  TempDir dir("payload");
  const Snapshot snap = sample_snapshot(1);
  scaleout::save_snapshot(dir.path(), snap);
  EXPECT_EQ(fs::file_size(data_of(dir.path(), 1)), snap.payload_bytes());

  const scaleout::CheckpointConfig cfg =
      scaleout::backed_checkpoint_config(snap);
  EXPECT_EQ(cfg.state_bytes, snap.payload_bytes());
  EXPECT_LT(scaleout::checkpoint_save_time(cfg).seconds(),
            scaleout::checkpoint_save_time(scaleout::CheckpointConfig{})
                .seconds());
}

TEST(SnapshotFormat, RejectsDuplicateOrWhitespaceNames) {
  Snapshot s;
  s.add("w", Tensor::zeros(tensor::Shape{{2}}));
  EXPECT_THROW(s.add("w", Tensor::zeros(tensor::Shape{{2}})), sim::Error);
  EXPECT_THROW(s.add("bad name", Tensor::zeros(tensor::Shape{{2}})),
               sim::Error);
  s.add_meta("k", 1);
  EXPECT_THROW(s.add_meta("k", 2), sim::Error);
  EXPECT_THROW(s.require("absent"), sim::CheckpointShapeMismatch);
  EXPECT_THROW(s.require_meta("absent"), sim::CheckpointShapeMismatch);
}

// ---------------------------------------------------------------------------
// Typed load errors — each damage class surfaces as its own exception and a
// corrupted checkpoint never loads silently.

TEST(SnapshotErrors, VersionSkewIsTyped) {
  TempDir dir("skew");
  scaleout::SaveOptions opts;
  opts.version = scaleout::kSnapshotFormatVersion + 1;
  const std::string manifest =
      scaleout::save_snapshot(dir.path(), sample_snapshot(3), opts);
  EXPECT_THROW(scaleout::load_snapshot(manifest), sim::CheckpointVersionSkew);

  const SnapshotScan scan = scaleout::scan_snapshots(dir.path());
  EXPECT_FALSE(scan.found());
  ASSERT_EQ(scan.rejected.size(), 1u);
  EXPECT_EQ(scan.rejected[0].reason, SnapshotReject::kVersionSkew);
}

TEST(SnapshotErrors, TruncatedDataIsTyped) {
  TempDir dir("trunc");
  const std::string manifest =
      scaleout::save_snapshot(dir.path(), sample_snapshot(3));
  const std::string data = slurp(data_of(dir.path(), 3));
  spit(data_of(dir.path(), 3), data.substr(0, data.size() / 2));
  EXPECT_THROW(scaleout::load_snapshot(manifest), sim::CheckpointTruncated);
}

TEST(SnapshotErrors, FlippedDataBitIsTyped) {
  TempDir dir("flip");
  const std::string manifest =
      scaleout::save_snapshot(dir.path(), sample_snapshot(3));
  std::string data = slurp(data_of(dir.path(), 3));
  data[data.size() / 3] = static_cast<char>(data[data.size() / 3] ^ 0x10);
  spit(data_of(dir.path(), 3), data);
  EXPECT_THROW(scaleout::load_snapshot(manifest),
               sim::CheckpointChecksumMismatch);
}

TEST(SnapshotErrors, DamagedManifestIsTyped) {
  TempDir dir("manifest");
  const std::string manifest =
      scaleout::save_snapshot(dir.path(), sample_snapshot(3));
  const std::string text = slurp(manifest);

  spit(manifest, text.substr(0, text.size() - 8));  // torn checksum trailer
  EXPECT_THROW(scaleout::load_snapshot(manifest), sim::CheckpointError);

  std::string flipped = text;
  flipped[text.find("step 3") + 5] = '4';  // body edit breaks self-checksum
  spit(manifest, flipped);
  EXPECT_THROW(scaleout::load_snapshot(manifest),
               sim::CheckpointChecksumMismatch);
}

TEST(SnapshotErrors, MissingDataFileIsTyped) {
  TempDir dir("nodata");
  const std::string manifest =
      scaleout::save_snapshot(dir.path(), sample_snapshot(3));
  fs::remove(data_of(dir.path(), 3));
  EXPECT_THROW(scaleout::load_snapshot(manifest), sim::CheckpointTruncated);

  const SnapshotScan scan = scaleout::scan_snapshots(dir.path());
  EXPECT_FALSE(scan.found());
  ASSERT_EQ(scan.rejected.size(), 1u);
  EXPECT_EQ(scan.rejected[0].reason, SnapshotReject::kMissingData);
}

// ---------------------------------------------------------------------------
// Directory scan: fallback to the newest valid snapshot under fuzzed damage.

TEST(SnapshotScan, EmptyOrMissingDirectoryIsCleanNotFound) {
  TempDir dir("empty");
  EXPECT_FALSE(scaleout::scan_snapshots(dir.path()).found());
  EXPECT_FALSE(
      scaleout::scan_snapshots(dir.path() + "/does-not-exist").found());
  EXPECT_FALSE(scaleout::scan_snapshots("").found());
}

TEST(SnapshotScan, FuzzedDamageNeverLoadsSilentlyAndFallsBack) {
  TempDir dir("fuzz");
  scaleout::save_snapshot(dir.path(), sample_snapshot(1));
  scaleout::save_snapshot(dir.path(), sample_snapshot(2));

  sim::CounterRng fuzz{0xF022};
  for (std::uint64_t i = 0; i < 36; ++i) {
    // Fresh newest checkpoint, then one deterministic act of vandalism.
    scaleout::save_snapshot(dir.path(), sample_snapshot(3));
    const std::string data_path = data_of(dir.path(), 3);
    const std::string manifest_path = manifest_of(dir.path(), 3);
    const std::string data = slurp(data_path);
    switch (fuzz.below(i * 2, 6)) {
      case 0: {  // flip one data bit
        std::string d = data;
        const std::uint64_t bit = fuzz.below(i * 2 + 1, d.size() * 8);
        d[bit / 8] = static_cast<char>(d[bit / 8] ^ (1u << (bit % 8)));
        spit(data_path, d);
        break;
      }
      case 1:  // truncate data
        spit(data_path, data.substr(0, fuzz.below(i * 2 + 1, data.size())));
        break;
      case 2:  // lost manifest commit
        fs::remove(manifest_path);
        break;
      case 3: {  // flip one manifest byte
        std::string m = slurp(manifest_path);
        const std::uint64_t at = fuzz.below(i * 2 + 1, m.size());
        m[at] = static_cast<char>(m[at] ^ 0x08);
        spit(manifest_path, m);
        break;
      }
      case 4: {  // truncate manifest
        const std::string m = slurp(manifest_path);
        spit(manifest_path, m.substr(0, fuzz.below(i * 2 + 1, m.size())));
        break;
      }
      case 5:  // delete data, keep manifest
        fs::remove(data_path);
        break;
    }

    const SnapshotScan scan = scaleout::scan_snapshots(dir.path());
    ASSERT_TRUE(scan.found()) << "iteration " << i;
    EXPECT_EQ(scan.step, 2u) << "iteration " << i << ": damaged step 3 "
                             << "must never restore, and step 2 is valid";
    ASSERT_FALSE(scan.rejected.empty()) << "iteration " << i;
    EXPECT_EQ(scan.rejected[0].step, 3u);
    EXPECT_FALSE(scan.rejected[0].detail.empty());
    EXPECT_NE(scaleout::to_string(scan).find("rejected step 3"),
              std::string::npos);
    // Reset for the next iteration.
    fs::remove(data_path);
    fs::remove(manifest_path);
  }
}

TEST(SnapshotScan, TornWriteWindowIsCaughtAtResume) {
  // checkpoint_corruption_rate = 1 fires the simulated torn-write window on
  // every save; the mode (lost commit / truncation / bit flip) varies with
  // the site.  The writer must stay silent and the scan must reject.
  sim::FaultProfile profile;
  profile.checkpoint_corruption_rate = 1.0;
  const sim::FaultInjector faults{0xC0FFEE, profile};

  for (std::uint64_t site = 1; site <= 18; ++site) {
    TempDir dir("torn-" + std::to_string(site));
    scaleout::save_snapshot(dir.path(), sample_snapshot(1));

    scaleout::SaveOptions opts;
    opts.faults = &faults;
    opts.site = site;
    scaleout::save_snapshot(dir.path(), sample_snapshot(2), opts);

    const SnapshotScan scan = scaleout::scan_snapshots(dir.path());
    ASSERT_TRUE(scan.found()) << "site " << site;
    EXPECT_EQ(scan.step, 1u) << "site " << site;
    ASSERT_EQ(scan.rejected.size(), 1u) << "site " << site;
    EXPECT_EQ(scan.rejected[0].step, 2u);
    EXPECT_TRUE(scan.rejected[0].reason == SnapshotReject::kUncommitted ||
                scan.rejected[0].reason == SnapshotReject::kTruncated ||
                scan.rejected[0].reason == SnapshotReject::kChecksumMismatch)
        << scaleout::snapshot_reject_name(scan.rejected[0].reason);
  }
}

// ---------------------------------------------------------------------------
// State-restore accessors

TEST(GradScalerRestore, RoundTripsAndValidates) {
  nn::GradScalerConfig cfg;
  cfg.growth_interval = 3;
  nn::GradScaler a(cfg);
  a.update(false);
  a.update(true);
  a.update(false);
  a.update(false);

  nn::GradScaler b(cfg);
  b.restore(a.scale(), a.clean_streak(), a.skipped_steps());
  EXPECT_EQ(std::bit_cast<std::uint32_t>(a.scale()),
            std::bit_cast<std::uint32_t>(b.scale()));
  EXPECT_EQ(a.clean_streak(), b.clean_streak());
  EXPECT_EQ(a.skipped_steps(), b.skipped_steps());
  // The pair must now evolve identically.
  for (const bool overflow : {false, false, true, false}) {
    EXPECT_EQ(a.update(overflow), b.update(overflow));
    EXPECT_EQ(a.scale(), b.scale());
  }

  nn::GradScaler c(cfg);
  EXPECT_THROW(c.restore(cfg.min_scale / 2.0f, 0, 0), sim::Error);
  EXPECT_THROW(c.restore(cfg.init_scale, cfg.growth_interval, 0), sim::Error);
  EXPECT_THROW(c.restore(cfg.init_scale, -1, 0), sim::Error);
  EXPECT_THROW(c.restore(cfg.init_scale, 0, -5), sim::Error);
}

TEST(OptimizerStateRefs, NamesEveryStateSlotSymmetrically) {
  graph::Graph g;
  nn::LmConfig mcfg = nn::LmConfig::tiny(nn::LmArch::kGpt2);
  mcfg.training = true;
  const nn::LanguageModel model = build_language_model(g, mcfg, 0x7A11);
  graph::Graph ug;
  nn::OptimizerConfig ocfg;
  ocfg.kind = nn::OptimizerKind::kAdam;
  const nn::OptimizerState ostate =
      nn::build_update_graph(ug, g, model, ocfg);

  const auto refs = ostate.state_refs(ug);
  ASSERT_EQ(refs.size(), 2 * ostate.slots.size());
  for (const auto& ref : refs) {
    EXPECT_NE(ref.in, graph::kInvalidValue);
    EXPECT_NE(ref.out, graph::kInvalidValue);
    EXPECT_EQ(ref.name, ug.value(ref.in).name);
    const bool adam_slot = ref.name.ends_with(".adam_m") ||
                           ref.name.ends_with(".adam_v");
    EXPECT_TRUE(adam_slot) << ref.name;
  }
}

TEST(CounterRngState, SeedAndStreamIdReconstructExactly) {
  const sim::CounterRng rng = sim::CounterRng{0xABCD, 3}.stream(9);
  const sim::CounterRng rebuilt{rng.seed(), rng.stream_id()};
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(rng.bits(i), rebuilt.bits(i));
  }
}

// ---------------------------------------------------------------------------
// The headline invariant: a run killed at step k and resumed is bitwise
// identical to the uninterrupted run — losses, scales, skip decisions,
// restored counters, and the serialized final state.

struct ResumeCase {
  bool bf16_grads;
  bool loss_scaling;
  bool resample_data;
};

void expect_bitwise_resume(const ResumeCase& c) {
  constexpr std::int32_t kSteps = 4;
  nn::TrainOptions base;
  base.steps = kSteps;
  base.bf16_grads = c.bf16_grads;
  base.loss_scaling = c.loss_scaling;
  base.resample_data = c.resample_data;
  base.optimizer.kind = nn::OptimizerKind::kAdam;
  base.corrupt_grad_step = c.loss_scaling ? 1 : -1;  // exercise a skip path
  // The injected NaN is the point of the skip path; keep the guard from
  // trapping on it when the suite runs under GAUDI_GUARD=trap.
  base.run.guard = sim::NumericsPolicy::kWarn;

  const std::string tag =
      std::string("resume-") + (c.bf16_grads ? "b1" : "b0") +
      (c.loss_scaling ? "s1" : "s0") + (c.resample_data ? "r1" : "r0");
  TempDir full_dir(tag + "-full");
  nn::TrainOptions full_opts = base;
  full_opts.checkpoint_dir = full_dir.path();
  const nn::TrainResult full = nn::train_language_model(full_opts);
  ASSERT_EQ(full.steps.size(), static_cast<std::size_t>(kSteps));
  EXPECT_EQ(full.checkpoints_saved, static_cast<std::uint64_t>(kSteps));

  for (std::int32_t k = 1; k < kSteps; ++k) {
    TempDir dir(tag + "-k" + std::to_string(k));
    // "Kill at step k": run only k steps, checkpointing every step.
    nn::TrainOptions prefix = base;
    prefix.steps = k;
    prefix.checkpoint_dir = dir.path();
    (void)nn::train_language_model(prefix);

    nn::TrainOptions rest = base;
    rest.checkpoint_dir = dir.path();
    rest.resume = true;
    const nn::TrainResult resumed = nn::train_language_model(rest);
    ASSERT_EQ(resumed.resumed_from_step, k);
    ASSERT_EQ(resumed.steps.size(), static_cast<std::size_t>(kSteps - k));

    for (std::int32_t i = 0; i < kSteps - k; ++i) {
      const nn::TrainStepInfo& want = full.steps[static_cast<std::size_t>(k + i)];
      const nn::TrainStepInfo& got = resumed.steps[static_cast<std::size_t>(i)];
      EXPECT_EQ(std::bit_cast<std::uint32_t>(want.loss),
                std::bit_cast<std::uint32_t>(got.loss))
          << "k=" << k << " step " << k + i;
      EXPECT_EQ(std::bit_cast<std::uint32_t>(want.scale),
                std::bit_cast<std::uint32_t>(got.scale));
      EXPECT_EQ(want.applied, got.applied);
    }
    EXPECT_EQ(std::bit_cast<std::uint32_t>(full.final_scale),
              std::bit_cast<std::uint32_t>(resumed.final_scale));
    EXPECT_EQ(std::bit_cast<std::uint32_t>(full.final_loss),
              std::bit_cast<std::uint32_t>(resumed.final_loss));
    EXPECT_EQ(full.skipped_steps, resumed.skipped_steps);

    // The complete serialized state — parameters, optimizer slots, scaler,
    // cursors — must land byte-identical on disk.
    EXPECT_EQ(slurp(data_of(full_dir.path(), kSteps)),
              slurp(data_of(dir.path(), kSteps)))
        << "k=" << k;
    EXPECT_EQ(slurp(manifest_of(full_dir.path(), kSteps)),
              slurp(manifest_of(dir.path(), kSteps)));
  }
}

TEST(DeterministicResume, KillAtEveryStepBf16OnScalingOn) {
  expect_bitwise_resume({true, true, false});
}
TEST(DeterministicResume, KillAtEveryStepBf16OnScalingOff) {
  expect_bitwise_resume({true, false, false});
}
TEST(DeterministicResume, KillAtEveryStepBf16OffScalingOn) {
  expect_bitwise_resume({false, true, false});
}
TEST(DeterministicResume, KillAtEveryStepBf16OffScalingOff) {
  expect_bitwise_resume({false, false, false});
}
TEST(DeterministicResume, KillAtEveryStepResampledData) {
  expect_bitwise_resume({true, true, true});
}

TEST(DeterministicResume, FreshStartOnEmptyOrMissingDirectory) {
  TempDir dir("fresh");
  nn::TrainOptions opts;
  opts.steps = 2;
  opts.checkpoint_dir = dir.path();
  opts.resume = true;
  const nn::TrainResult r = nn::train_language_model(opts);
  EXPECT_EQ(r.resumed_from_step, -1);
  EXPECT_NE(r.resume_report.find("starting fresh"), std::string::npos);
  EXPECT_EQ(r.checkpoints_saved, 2u);

  nn::TrainOptions missing = opts;
  missing.checkpoint_dir = dir.path() + "/never-created";
  const nn::TrainResult m = nn::train_language_model(missing);
  EXPECT_EQ(m.resumed_from_step, -1);
  EXPECT_NE(m.resume_report.find("starting fresh"), std::string::npos);
}

TEST(DeterministicResume, FingerprintMismatchIsTypedNotSilent) {
  TempDir dir("fingerprint");
  nn::TrainOptions opts;
  opts.steps = 2;
  opts.checkpoint_dir = dir.path();
  (void)nn::train_language_model(opts);

  nn::TrainOptions other = opts;
  other.steps = 4;
  other.resume = true;
  other.optimizer.kind = nn::OptimizerKind::kAdam;
  EXPECT_THROW((void)nn::train_language_model(other),
               sim::CheckpointShapeMismatch);

  other.optimizer.kind = opts.optimizer.kind;
  other.seed = opts.seed + 1;
  EXPECT_THROW((void)nn::train_language_model(other),
               sim::CheckpointShapeMismatch);
}

TEST(DeterministicResume, ResumeFallsBackOverCorruptedNewestCheckpoint) {
  TempDir dir("fallback");
  nn::TrainOptions opts;
  opts.steps = 3;
  opts.checkpoint_dir = dir.path();
  const nn::TrainResult full = nn::train_language_model(opts);
  ASSERT_EQ(full.checkpoints_saved, 3u);

  // Corrupt the newest checkpoint; resume must fall back to step 2 and
  // replay step 2 bitwise-identically to the uninterrupted run.
  std::string data = slurp(data_of(dir.path(), 3));
  data[0] = static_cast<char>(data[0] ^ 0x01);
  spit(data_of(dir.path(), 3), data);

  nn::TrainOptions rest = opts;
  rest.resume = true;
  const nn::TrainResult resumed = nn::train_language_model(rest);
  EXPECT_EQ(resumed.resumed_from_step, 2);
  EXPECT_NE(resumed.resume_report.find("checksum-mismatch"),
            std::string::npos);
  ASSERT_EQ(resumed.steps.size(), 1u);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(resumed.steps[0].loss),
            std::bit_cast<std::uint32_t>(full.steps[2].loss));
}

TEST(DeterministicResume, YoungDalyPolicySavesAtComputedInterval) {
  TempDir dir("yd");
  nn::TrainOptions opts;
  opts.steps = 6;
  opts.checkpoint_dir = dir.path();
  opts.checkpoint_policy = scaleout::RecoveryPolicy::kYoungDaly;
  // Tiny payload + short MTBF → the Young/Daly interval lands small but the
  // exact value comes from the measured snapshot size.
  opts.mtbf_steps = 4.0;
  opts.nominal_step_time = sim::SimTime::from_ms(1.0);
  const nn::TrainResult r = nn::train_language_model(opts);
  EXPECT_GE(r.checkpoints_saved, 1u);  // the final step always lands
  EXPECT_FALSE(r.last_checkpoint.empty());
  EXPECT_TRUE(fs::exists(r.last_checkpoint));
  const SnapshotScan scan = scaleout::scan_snapshots(dir.path());
  ASSERT_TRUE(scan.found());
  EXPECT_EQ(scan.step, 6u);
}

TEST(DeterministicResume, NonePolicyNeverSaves) {
  TempDir dir("none");
  nn::TrainOptions opts;
  opts.steps = 2;
  opts.checkpoint_dir = dir.path();
  opts.checkpoint_policy = scaleout::RecoveryPolicy::kNone;
  const nn::TrainResult r = nn::train_language_model(opts);
  EXPECT_EQ(r.checkpoints_saved, 0u);
  EXPECT_FALSE(scaleout::scan_snapshots(dir.path()).found());
}

}  // namespace
}  // namespace gaudi

// TPC simulator tests: kernel numerics against the tensor reference, VLIW
// cycle-accounting laws, index-space distribution, local-memory limits, and
// the functional/timing mode contract.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "sim/chip_config.hpp"
#include "tensor/ops.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"

namespace gaudi::tpc {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

sim::TpcConfig tpc_cfg() { return sim::ChipConfig::hls1().tpc; }

TpcCluster make_cluster() { return TpcCluster(tpc_cfg(), sim::CounterRng{0xFEED}); }

Tensor rand_tensor(Shape shape, std::uint64_t stream, float lo = -2.0f,
                   float hi = 2.0f) {
  return Tensor::uniform(std::move(shape), sim::CounterRng{0xAB}.stream(stream), lo,
                         hi);
}

// ---------------------------------------------------------------------------
// Index space
// ---------------------------------------------------------------------------

TEST(IndexSpace, MemberCoordinates) {
  const IndexSpace space{{2, 3, 4}};
  EXPECT_EQ(space.size(), 24);
  const Member m = space.member(13);  // 13 = 1*12 + 0*4 + 1
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 0);
  EXPECT_EQ(m[2], 1);
  EXPECT_THROW(space.member(24), sim::InvalidArgument);
}

TEST(IndexSpace, CyclicDistributionCoversAllMembers) {
  const IndexSpace space{{29}};
  std::vector<int> hits(29, 0);
  for (std::uint32_t core = 0; core < 8; ++core) {
    const std::int64_t count = space.members_on_core(core, 8);
    for (std::int64_t k = 0; k < count; ++k) {
      ++hits[static_cast<std::size_t>(space.core_member(core, k, 8))];
    }
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(IndexSpace, LoadBalanceWithinOne) {
  const IndexSpace space{{1001}};
  std::int64_t mn = 1'000'000, mx = 0;
  for (std::uint32_t c = 0; c < 8; ++c) {
    const std::int64_t n = space.members_on_core(c, 8);
    mn = std::min(mn, n);
    mx = std::max(mx, n);
  }
  EXPECT_LE(mx - mn, 1);
}

// ---------------------------------------------------------------------------
// Cycle accounting laws
// ---------------------------------------------------------------------------

TEST(SlotCycles, ElapsedIsMaxOverSlots) {
  SlotCycles c;
  c.load = 10;
  c.vpu = 25;
  c.store = 7;
  c.spu = 3;
  EXPECT_EQ(c.elapsed(), 25u);
  EXPECT_EQ(c.total_issued(), 45u);
}

TEST(Cluster, TimingEqualsFunctionalCyclesForUniformKernels) {
  // Phantom-mode extrapolation must agree exactly with full execution when
  // members are uniform.
  const Tensor in = rand_tensor(Shape{{64, 64}}, 1);
  Tensor out_f = Tensor::zeros(Shape{{64, 64}});
  const TpcCluster cluster = make_cluster();
  const RunResult functional =
      cluster.run(UnaryEwKernel(UnaryKind::kExp, in, out_f), ExecMode::kFunctional);
  const RunResult timing = cluster.run(
      UnaryEwKernel(UnaryKind::kExp, Tensor::phantom(Shape{{64, 64}}),
                    Tensor::phantom(Shape{{64, 64}})),
      ExecMode::kTiming);
  EXPECT_EQ(functional.cycles, timing.cycles);
  EXPECT_TRUE(timing.extrapolated);
  EXPECT_FALSE(functional.extrapolated);
}

TEST(Cluster, CyclesScaleLinearlyWithElements) {
  const TpcCluster cluster = make_cluster();
  auto cycles_for = [&](std::int64_t n) {
    return cluster
        .run(UnaryEwKernel(UnaryKind::kRelu, Tensor::phantom(Shape{{n}}),
                           Tensor::phantom(Shape{{n}})),
             ExecMode::kTiming)
        .cycles;
  };
  const auto launch = tpc_cfg().launch_overhead_cycles;
  const auto small = cycles_for(1 << 16) - launch;
  const auto big = cycles_for(1 << 20) - launch;
  EXPECT_NEAR(static_cast<double>(big) / static_cast<double>(small), 16.0, 0.5);
}

TEST(Cluster, MoreCoresFasterKernel) {
  sim::TpcConfig one = tpc_cfg();
  one.num_cores = 1;
  const TpcCluster c1(one);
  const TpcCluster c8(tpc_cfg());
  const Tensor in = Tensor::phantom(Shape{{1 << 18}});
  const Tensor out = Tensor::phantom(Shape{{1 << 18}});
  const auto r1 = c1.run(UnaryEwKernel(UnaryKind::kExp, in, out), ExecMode::kTiming);
  const auto r8 = c8.run(UnaryEwKernel(UnaryKind::kExp, in, out), ExecMode::kTiming);
  EXPECT_NEAR(static_cast<double>(r1.cycles - one.launch_overhead_cycles) /
                  static_cast<double>(r8.cycles - one.launch_overhead_cycles),
              8.0, 0.5);
}

TEST(Cluster, StreamingKernelsHitTheBandwidthBound) {
  // A pure copy-like kernel moves 8 B/element; at full vector-issue rate the
  // 8 cores outrun 1 TB/s HBM, so the duration is memory-bound.
  const std::int64_t n = 1 << 26;  // large enough to amortize kernel launch
  const Tensor in = Tensor::phantom(Shape{{n}});
  const Tensor out = Tensor::phantom(Shape{{n}});
  const TpcCluster cluster = make_cluster();
  const RunResult r = cluster.run(
      ScalarEwKernel(ScalarKind::kAddS, in, 0.0f, out), ExecMode::kTiming);
  EXPECT_TRUE(r.memory_bound);
  EXPECT_EQ(r.global_bytes, static_cast<std::uint64_t>(2 * n * 4));
  EXPECT_NEAR(r.duration.seconds(), static_cast<double>(r.global_bytes) / 1e12,
              1e-5);

  // A compute-heavy kernel (exp) stays compute-bound.
  const RunResult e =
      cluster.run(UnaryEwKernel(UnaryKind::kExp, in, out), ExecMode::kTiming);
  EXPECT_FALSE(e.memory_bound);
  // And a bandwidth-unconstrained cluster runs the copy faster.
  const TpcCluster wide(tpc_cfg(), sim::CounterRng{1}, 1e15);
  EXPECT_LT(wide.run(ScalarEwKernel(ScalarKind::kAddS, in, 0.0f, out),
                     ExecMode::kTiming)
                .duration,
            r.duration);
}

TEST(Cluster, RejectsKernelExceedingLocalMemory) {
  // A softmax row of > 320 vectors would need more than the 80 KB bank only
  // if cached; our kernel falls back to global passes instead — so force the
  // failure through a tiny configured bank.
  sim::TpcConfig cfg = tpc_cfg();
  cfg.vector_local_bytes = 1024;  // 4 vectors
  const TpcCluster tiny(cfg);
  const Tensor in = Tensor::phantom(Shape{{8, 512}});
  const Tensor out = Tensor::phantom(Shape{{8, 512}});
  EXPECT_THROW(tiny.run(SoftmaxKernel(in, out), ExecMode::kTiming),
               sim::ResourceExhausted);
}

TEST(Cluster, SoftmaxFallsBackWhenRowTooLongToCache) {
  // Rows beyond the cacheable bound run with global-memory passes and remain
  // correct.
  const std::int64_t cols = 64 * 300;  // > kMaxCachedRowVectors(256) vectors
  const Tensor in = rand_tensor(Shape{{2, cols}}, 2);
  Tensor out = Tensor::zeros(Shape{{2, cols}});
  const TpcCluster cluster = make_cluster();
  SoftmaxKernel kernel(in, out);
  EXPECT_EQ(kernel.local_memory_vectors(), 0u);
  cluster.run(kernel, ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::softmax_lastdim(in)), 1e-5);
}

// ---------------------------------------------------------------------------
// Unary kernels vs reference (parameterized over kinds and shapes)
// ---------------------------------------------------------------------------

class UnaryKernelTest
    : public ::testing::TestWithParam<std::tuple<UnaryKind, std::int64_t>> {};

TEST_P(UnaryKernelTest, MatchesReference) {
  const auto [kind, n] = GetParam();
  // Keep inputs positive for log/sqrt/recip.
  const bool positive = kind == UnaryKind::kLog || kind == UnaryKind::kSqrt ||
                        kind == UnaryKind::kRecip;
  const Tensor in = rand_tensor(Shape{{n}}, static_cast<std::uint64_t>(n) + 7,
                                positive ? 0.1f : -2.0f, 2.0f);
  Tensor out = Tensor::zeros(Shape{{n}});
  make_cluster().run(UnaryEwKernel(kind, in, out, 0.01f), ExecMode::kFunctional);

  Tensor expect;
  switch (kind) {
    case UnaryKind::kExp: expect = ops::exp(in); break;
    case UnaryKind::kLog: expect = ops::log(in); break;
    case UnaryKind::kSqrt: expect = ops::sqrt(in); break;
    case UnaryKind::kSquare: expect = ops::square(in); break;
    case UnaryKind::kRecip:
      expect = ops::unary(in, [](float x) { return 1.0f / x; });
      break;
    case UnaryKind::kRelu: expect = ops::relu(in); break;
    case UnaryKind::kLeakyRelu: expect = ops::leaky_relu(in, 0.01f); break;
    case UnaryKind::kElu: expect = ops::elu(in, 0.01f); break;
    case UnaryKind::kGelu: expect = ops::gelu(in); break;
    case UnaryKind::kSigmoid: expect = ops::sigmoid(in); break;
    case UnaryKind::kTanh: expect = ops::tanh(in); break;
    case UnaryKind::kNeg:
      expect = ops::mul_scalar(in, -1.0f);
      break;
    case UnaryKind::kAbs:
      expect = ops::unary(in, [](float x) { return std::fabs(x); });
      break;
  }
  EXPECT_LT(ops::max_abs_diff(out, expect), 1e-5) << unary_kind_name(kind);
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSizes, UnaryKernelTest,
    ::testing::Combine(
        ::testing::Values(UnaryKind::kExp, UnaryKind::kLog, UnaryKind::kSqrt,
                          UnaryKind::kSquare, UnaryKind::kRecip, UnaryKind::kRelu,
                          UnaryKind::kLeakyRelu, UnaryKind::kElu, UnaryKind::kGelu,
                          UnaryKind::kSigmoid, UnaryKind::kTanh, UnaryKind::kNeg,
                          UnaryKind::kAbs),
        ::testing::Values<std::int64_t>(1, 63, 64, 65, 512, 1000)),
    [](const auto& suite_info) {
      return std::string(unary_kind_name(std::get<0>(suite_info.param))) + "_" +
             std::to_string(std::get<1>(suite_info.param));
    });

// Gradient kernels against central differences of the forward kernel.
class UnaryGradKernelTest : public ::testing::TestWithParam<UnaryKind> {};

TEST_P(UnaryGradKernelTest, MatchesFiniteDifference) {
  const UnaryKind kind = GetParam();
  const bool positive = kind == UnaryKind::kLog || kind == UnaryKind::kSqrt ||
                        kind == UnaryKind::kRecip;
  const std::int64_t n = 97;
  const Tensor x = rand_tensor(Shape{{n}}, 991, positive ? 0.3f : -1.5f, 1.5f);
  const Tensor dy = rand_tensor(Shape{{n}}, 992, -1.0f, 1.0f);
  Tensor dx = Tensor::zeros(Shape{{n}});
  const TpcCluster cluster = make_cluster();
  cluster.run(UnaryGradKernel(kind, x, dy, dx, 0.2f), ExecMode::kFunctional);

  const float h = 1e-3f;
  Tensor xp = x.clone();
  Tensor xm = x.clone();
  for (std::int64_t i = 0; i < n; ++i) {
    xp.f32()[static_cast<std::size_t>(i)] += h;
    xm.f32()[static_cast<std::size_t>(i)] -= h;
  }
  Tensor yp = Tensor::zeros(Shape{{n}});
  Tensor ym = Tensor::zeros(Shape{{n}});
  cluster.run(UnaryEwKernel(kind, xp, yp, 0.2f), ExecMode::kFunctional);
  cluster.run(UnaryEwKernel(kind, xm, ym, 0.2f), ExecMode::kFunctional);
  for (std::int64_t i = 0; i < n; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    const float fd = (yp.f32()[idx] - ym.f32()[idx]) / (2.0f * h);
    EXPECT_NEAR(dx.f32()[idx], fd * dy.f32()[idx],
                2e-2f * std::max(1.0f, std::fabs(fd)))
        << unary_kind_name(kind) << " at " << i << " x=" << x.f32()[idx];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, UnaryGradKernelTest,
    ::testing::Values(UnaryKind::kExp, UnaryKind::kLog, UnaryKind::kSqrt,
                      UnaryKind::kSquare, UnaryKind::kRecip, UnaryKind::kElu,
                      UnaryKind::kGelu, UnaryKind::kSigmoid, UnaryKind::kTanh),
    [](const auto& suite_info) { return std::string(unary_kind_name(suite_info.param)); });

// ---------------------------------------------------------------------------
// Binary / scalar / fill / rowvec / dropout
// ---------------------------------------------------------------------------

TEST(BinaryKernel, AllKindsMatchReference) {
  const Tensor a = rand_tensor(Shape{{5, 77}}, 21);
  const Tensor b = rand_tensor(Shape{{5, 77}}, 22, 0.5f, 2.0f);
  const TpcCluster cluster = make_cluster();
  struct Case {
    BinaryKind kind;
    Tensor expect;
  };
  const Case cases[] = {
      {BinaryKind::kAdd, ops::add(a, b)},
      {BinaryKind::kSub, ops::sub(a, b)},
      {BinaryKind::kMul, ops::mul(a, b)},
      {BinaryKind::kDiv, ops::div(a, b)},
  };
  for (const auto& c : cases) {
    Tensor out = Tensor::zeros(Shape{{5, 77}});
    cluster.run(BinaryEwKernel(c.kind, a, b, out), ExecMode::kFunctional);
    EXPECT_LT(ops::max_abs_diff(out, c.expect), 1e-5)
        << binary_kind_name(c.kind);
  }
}

TEST(ScalarKernel, AllKindsMatchReference) {
  const Tensor a = rand_tensor(Shape{{200}}, 23);
  const TpcCluster cluster = make_cluster();
  struct Case {
    ScalarKind kind;
    Tensor expect;
  };
  const Case cases[] = {
      {ScalarKind::kAddS, ops::add_scalar(a, 1.5f)},
      {ScalarKind::kSubS, ops::add_scalar(a, -1.5f)},
      {ScalarKind::kRsubS, ops::add_scalar(ops::mul_scalar(a, -1.0f), 1.5f)},
      {ScalarKind::kMulS, ops::mul_scalar(a, 1.5f)},
  };
  for (const auto& c : cases) {
    Tensor out = Tensor::zeros(Shape{{200}});
    cluster.run(ScalarEwKernel(c.kind, a, 1.5f, out), ExecMode::kFunctional);
    EXPECT_LT(ops::max_abs_diff(out, c.expect), 1e-6) << scalar_kind_name(c.kind);
  }
}

TEST(FillKernel, WritesConstant) {
  Tensor out = Tensor::zeros(Shape{{3, 100}});
  make_cluster().run(FillKernel(out, 2.75f), ExecMode::kFunctional);
  for (float v : out.f32()) EXPECT_EQ(v, 2.75f);
}

TEST(RowvecKernel, AddAndMul) {
  const Tensor x = rand_tensor(Shape{{9, 40}}, 24);
  const Tensor v = rand_tensor(Shape{{40}}, 25);
  const TpcCluster cluster = make_cluster();
  Tensor out = Tensor::zeros(Shape{{9, 40}});
  cluster.run(RowvecKernel(RowvecKernel::Op::kAdd, x, v, out),
              ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::add_rowvec(x, v)), 1e-6);
  cluster.run(RowvecKernel(RowvecKernel::Op::kMul, x, v, out),
              ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::mul_rowvec(x, v)), 1e-6);
}

TEST(GluKernel, MatchesDefinition) {
  const Tensor x = rand_tensor(Shape{{6, 2 * 50}}, 26);
  Tensor out = Tensor::zeros(Shape{{6, 50}});
  make_cluster().run(GluKernel(x, out), ExecMode::kFunctional);
  for (int r = 0; r < 6; ++r) {
    for (int j = 0; j < 50; ++j) {
      const float a = x.f32()[r * 100 + j];
      const float b = x.f32()[r * 100 + 50 + j];
      EXPECT_NEAR(out.f32()[r * 50 + j], a / (1.0f + std::exp(-b)), 1e-5f);
    }
  }
}

TEST(GluKernel, RejectsOddTrailingDim) {
  const Tensor x = Tensor::zeros(Shape{{2, 7}});
  const Tensor out = Tensor::zeros(Shape{{2, 3}});
  EXPECT_THROW(GluKernel(x, out), sim::InvalidArgument);
}

TEST(GluGradKernel, MatchesFiniteDifference) {
  const std::int64_t d = 10;
  const Tensor x = rand_tensor(Shape{{3, 2 * d}}, 27, -1.0f, 1.0f);
  const Tensor dout = rand_tensor(Shape{{3, d}}, 28, -1.0f, 1.0f);
  Tensor din = Tensor::zeros(Shape{{3, 2 * d}});
  const TpcCluster cluster = make_cluster();
  cluster.run(GluGradKernel(x, dout, din), ExecMode::kFunctional);

  const float h = 1e-3f;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    Tensor xp = x.clone();
    Tensor xm = x.clone();
    xp.f32()[static_cast<std::size_t>(i)] += h;
    xm.f32()[static_cast<std::size_t>(i)] -= h;
    Tensor yp = Tensor::zeros(Shape{{3, d}});
    Tensor ym = Tensor::zeros(Shape{{3, d}});
    cluster.run(GluKernel(xp, yp), ExecMode::kFunctional);
    cluster.run(GluKernel(xm, ym), ExecMode::kFunctional);
    double fd = 0.0;
    for (std::int64_t j = 0; j < yp.numel(); ++j) {
      fd += (yp.f32()[static_cast<std::size_t>(j)] -
             ym.f32()[static_cast<std::size_t>(j)]) /
            (2.0 * h) * dout.f32()[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(din.f32()[static_cast<std::size_t>(i)], fd, 2e-2);
  }
}

TEST(DropoutKernel, ZeroProbabilityIsIdentity) {
  const Tensor x = rand_tensor(Shape{{333}}, 29);
  Tensor out = Tensor::zeros(Shape{{333}});
  make_cluster().run(DropoutKernel(x, out, 0.0f, 5), ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, x), 1e-6);
}

TEST(DropoutKernel, DropRateAndScalePreserveMean) {
  const std::int64_t n = 1 << 16;
  const Tensor x = Tensor::full(Shape{{n}}, 1.0f);
  Tensor out = Tensor::zeros(Shape{{n}});
  const float p = 0.3f;
  make_cluster().run(DropoutKernel(x, out, p, 9), ExecMode::kFunctional);
  std::int64_t zeros = 0;
  double sum = 0.0;
  for (float v : out.f32()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 1.0f / (1.0f - p), 1e-5f);
    }
    sum += v;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / n, p, 0.02);
  EXPECT_NEAR(sum / n, 1.0, 0.02);  // inverted dropout preserves expectation
}

TEST(DropoutKernel, SameSeedReproducesMask) {
  const Tensor x = rand_tensor(Shape{{4096}}, 30);
  Tensor out1 = Tensor::zeros(Shape{{4096}});
  Tensor out2 = Tensor::zeros(Shape{{4096}});
  const TpcCluster cluster = make_cluster();
  cluster.run(DropoutKernel(x, out1, 0.5f, 77), ExecMode::kFunctional);
  cluster.run(DropoutKernel(x, out2, 0.5f, 77), ExecMode::kFunctional);
  EXPECT_EQ(ops::max_abs_diff(out1, out2), 0.0);
  Tensor out3 = Tensor::zeros(Shape{{4096}});
  cluster.run(DropoutKernel(x, out3, 0.5f, 78), ExecMode::kFunctional);
  EXPECT_GT(ops::max_abs_diff(out1, out3), 0.0);
}

// ---------------------------------------------------------------------------
// Softmax / layernorm / reductions / transpose / swap
// ---------------------------------------------------------------------------

class SoftmaxShapeTest
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(SoftmaxShapeTest, MatchesReference) {
  const auto [rows, cols] = GetParam();
  const Tensor in = rand_tensor(Shape{{rows, cols}}, 31 + cols, -6.0f, 6.0f);
  Tensor out = Tensor::zeros(Shape{{rows, cols}});
  make_cluster().run(SoftmaxKernel(in, out), ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::softmax_lastdim(in)), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SoftmaxShapeTest,
                         ::testing::Values(std::make_pair(1, 1),
                                           std::make_pair(3, 63),
                                           std::make_pair(4, 64),
                                           std::make_pair(5, 65),
                                           std::make_pair(16, 500),
                                           std::make_pair(2, 2048)));

TEST(SoftmaxGradKernel, MatchesAnalyticJacobian) {
  const Tensor x = rand_tensor(Shape{{3, 40}}, 33, -2.0f, 2.0f);
  const Tensor y = ops::softmax_lastdim(x);
  const Tensor dy = rand_tensor(Shape{{3, 40}}, 34);
  Tensor dx = Tensor::zeros(Shape{{3, 40}});
  make_cluster().run(SoftmaxGradKernel(y, dy, dx), ExecMode::kFunctional);
  // dx = y * (dy - sum(y * dy))
  const Tensor s = ops::sum_lastdim(ops::mul(y, dy));
  for (int r = 0; r < 3; ++r) {
    for (int j = 0; j < 40; ++j) {
      const float expect =
          y.f32()[r * 40 + j] * (dy.f32()[r * 40 + j] - s.f32()[r]);
      EXPECT_NEAR(dx.f32()[r * 40 + j], expect, 1e-5f);
    }
  }
}

TEST(LayerNormKernel, MatchesReferenceAndSavesStats) {
  const std::int64_t rows = 7, d = 96;
  const Tensor x = rand_tensor(Shape{{rows, d}}, 35, -3.0f, 3.0f);
  const Tensor gamma = rand_tensor(Shape{{d}}, 36, 0.5f, 1.5f);
  const Tensor beta = rand_tensor(Shape{{d}}, 37);
  Tensor y = Tensor::zeros(Shape{{rows, d}});
  Tensor mean = Tensor::zeros(Shape{{rows}});
  Tensor rstd = Tensor::zeros(Shape{{rows}});
  make_cluster().run(LayerNormKernel(x, gamma, beta, y, mean, rstd),
                     ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(y, ops::layernorm_lastdim(x, gamma, beta)), 1e-4);
  for (std::int64_t r = 0; r < rows; ++r) {
    double m = 0.0;
    for (std::int64_t j = 0; j < d; ++j) m += x.f32()[r * d + j];
    EXPECT_NEAR(mean.f32()[static_cast<std::size_t>(r)], m / d, 1e-4);
    EXPECT_GT(rstd.f32()[static_cast<std::size_t>(r)], 0.0f);
  }
}

TEST(LayerNormGradKernels, MatchFiniteDifferences) {
  const std::int64_t rows = 4, d = 24;
  const Tensor x = rand_tensor(Shape{{rows, d}}, 38, -1.0f, 1.0f);
  const Tensor gamma = rand_tensor(Shape{{d}}, 39, 0.5f, 1.5f);
  const Tensor beta = rand_tensor(Shape{{d}}, 40);
  const Tensor dy = rand_tensor(Shape{{rows, d}}, 41);
  const TpcCluster cluster = make_cluster();

  Tensor y = Tensor::zeros(Shape{{rows, d}});
  Tensor mean = Tensor::zeros(Shape{{rows}});
  Tensor rstd = Tensor::zeros(Shape{{rows}});
  cluster.run(LayerNormKernel(x, gamma, beta, y, mean, rstd), ExecMode::kFunctional);

  Tensor dx = Tensor::zeros(Shape{{rows, d}});
  cluster.run(LayerNormInputGradKernel(x, gamma, mean, rstd, dy, dx),
              ExecMode::kFunctional);
  Tensor dgamma = Tensor::zeros(Shape{{d}});
  Tensor dbeta = Tensor::zeros(Shape{{d}});
  cluster.run(LayerNormParamGradKernel(x, mean, rstd, dy, dgamma, dbeta),
              ExecMode::kFunctional);

  auto loss = [&](const Tensor& xx, const Tensor& gg, const Tensor& bb) {
    const Tensor yy = ops::layernorm_lastdim(xx, gg, bb);
    return ops::sum_all(ops::mul(yy, dy));
  };
  const float h = 1e-2f;
  // Spot-check a handful of coordinates of each gradient.
  for (const std::int64_t i : {0L, 13L, 57L, 95L}) {
    Tensor xp = x.clone(), xm = x.clone();
    xp.f32()[static_cast<std::size_t>(i)] += h;
    xm.f32()[static_cast<std::size_t>(i)] -= h;
    const double fd = (loss(xp, gamma, beta) - loss(xm, gamma, beta)) / (2.0 * h);
    EXPECT_NEAR(dx.f32()[static_cast<std::size_t>(i)], fd, 5e-2);
  }
  for (const std::int64_t j : {0L, 7L, 23L}) {
    Tensor gp = gamma.clone(), gm = gamma.clone();
    gp.f32()[static_cast<std::size_t>(j)] += h;
    gm.f32()[static_cast<std::size_t>(j)] -= h;
    const double fd = (loss(x, gp, beta) - loss(x, gm, beta)) / (2.0 * h);
    EXPECT_NEAR(dgamma.f32()[static_cast<std::size_t>(j)], fd, 5e-2);
    Tensor bp = beta.clone(), bm = beta.clone();
    bp.f32()[static_cast<std::size_t>(j)] += h;
    bm.f32()[static_cast<std::size_t>(j)] -= h;
    const double fdb = (loss(x, gamma, bp) - loss(x, gamma, bm)) / (2.0 * h);
    EXPECT_NEAR(dbeta.f32()[static_cast<std::size_t>(j)], fdb, 5e-2);
  }
}

TEST(ReduceKernel, SumMaxMean) {
  const Tensor x = rand_tensor(Shape{{11, 130}}, 42, -5.0f, 5.0f);
  const TpcCluster cluster = make_cluster();
  Tensor out = Tensor::zeros(Shape{{11, 1}});
  cluster.run(ReduceLastDimKernel(ReduceKind::kSum, x, out), ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::sum_lastdim(x)), 1e-3);
  cluster.run(ReduceLastDimKernel(ReduceKind::kMax, x, out), ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::max_lastdim(x)), 1e-6);
  cluster.run(ReduceLastDimKernel(ReduceKind::kMean, x, out), ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::mean_lastdim(x)), 1e-5);
}

TEST(BroadcastLastKernel, ReplicatesScalars) {
  const Tensor in = rand_tensor(Shape{{5, 1}}, 43);
  Tensor out = Tensor::zeros(Shape{{5, 37}});
  make_cluster().run(BroadcastLastKernel(in, out), ExecMode::kFunctional);
  for (int r = 0; r < 5; ++r) {
    for (int j = 0; j < 37; ++j) {
      EXPECT_EQ(out.f32()[r * 37 + j], in.f32()[r]);
    }
  }
}

TEST(ColumnSumKernel, MatchesManual) {
  const Tensor x = rand_tensor(Shape{{50, 70}}, 44);
  Tensor out = Tensor::zeros(Shape{{70}});
  make_cluster().run(ColumnSumKernel(x, out), ExecMode::kFunctional);
  for (int j = 0; j < 70; ++j) {
    double acc = 0.0;
    for (int r = 0; r < 50; ++r) acc += x.f32()[r * 70 + j];
    EXPECT_NEAR(out.f32()[j], acc, 1e-3);
  }
}

TEST(TransposeKernel, MatchesReferenceIncludingTails) {
  for (const auto& [m, n] : {std::pair<std::int64_t, std::int64_t>{64, 64},
                             {65, 63}, {128, 30}, {7, 200}}) {
    const Tensor x = rand_tensor(Shape{{3, m, n}}, 45 + m);
    Tensor out = Tensor::zeros(Shape{{3, n, m}});
    make_cluster().run(TransposeLast2Kernel(x, out), ExecMode::kFunctional);
    EXPECT_LT(ops::max_abs_diff(out, ops::transpose_last2(x)), 1e-6)
        << m << "x" << n;
  }
}

TEST(SwapAxes12Kernel, MatchesManualPermute) {
  const std::int64_t a = 2, b = 3, c = 4, d = 70;
  const Tensor x = rand_tensor(Shape{{a, b, c, d}}, 46);
  Tensor out = Tensor::zeros(Shape{{a, c, b, d}});
  make_cluster().run(SwapAxes12Kernel(x, out), ExecMode::kFunctional);
  for (std::int64_t ia = 0; ia < a; ++ia) {
    for (std::int64_t ib = 0; ib < b; ++ib) {
      for (std::int64_t ic = 0; ic < c; ++ic) {
        for (std::int64_t id = 0; id < d; ++id) {
          EXPECT_EQ(out.f32()[(((ia * c + ic) * b + ib) * d + id)],
                    x.f32()[(((ia * b + ib) * c + ic) * d + id)]);
        }
      }
    }
  }
}

TEST(AddMask2DKernel, BroadcastsOverBatch) {
  const Tensor x = rand_tensor(Shape{{4, 5, 6}}, 47);
  const Tensor mask = rand_tensor(Shape{{5, 6}}, 48);
  Tensor out = Tensor::zeros(Shape{{4, 5, 6}});
  make_cluster().run(AddMask2DKernel(x, mask, out), ExecMode::kFunctional);
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 30; ++i) {
      EXPECT_NEAR(out.f32()[batch * 30 + i], x.f32()[batch * 30 + i] + mask.f32()[i],
                  1e-6f);
    }
  }
}

// ---------------------------------------------------------------------------
// Batched matmul on TPC
// ---------------------------------------------------------------------------

class TpcMatmulTest
    : public ::testing::TestWithParam<std::tuple<std::int64_t, std::int64_t,
                                                 std::int64_t, std::int64_t>> {};

TEST_P(TpcMatmulTest, MatchesReference) {
  const auto [batch, m, k, n] = GetParam();
  const Tensor a = rand_tensor(Shape{{batch, m, k}}, 100 + m, -1.0f, 1.0f);
  const Tensor b = rand_tensor(Shape{{batch, k, n}}, 200 + n, -1.0f, 1.0f);
  Tensor c = Tensor::zeros(Shape{{batch, m, n}});
  make_cluster().run(BatchedMatMulTpcKernel(a, b, c), ExecMode::kFunctional);
  EXPECT_LT(ops::max_rel_diff(c, ops::matmul(a, b), 1e-2), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TpcMatmulTest,
    ::testing::Values(std::make_tuple(1, 32, 64, 64), std::make_tuple(2, 33, 65, 63),
                      std::make_tuple(3, 64, 128, 64), std::make_tuple(1, 128, 128, 128),
                      std::make_tuple(4, 17, 7, 130), std::make_tuple(1, 1, 1, 1)));

TEST(TpcMatmul, ThroughputNearClusterPeakAtLargeSize) {
  const Tensor a = Tensor::phantom(Shape{{8, 1024, 1024}});
  const Tensor b = Tensor::phantom(Shape{{8, 1024, 1024}});
  const Tensor c = Tensor::phantom(Shape{{8, 1024, 1024}});
  const auto r = make_cluster().run(BatchedMatMulTpcKernel(a, b, c),
                                    ExecMode::kTiming);
  const double peak = tpc_cfg().cluster_peak_flops() * 1e-12;
  EXPECT_GT(r.tflops(), 0.9 * peak);
  EXPECT_LE(r.tflops(), peak * 1.02);
}

// ---------------------------------------------------------------------------
// NLP kernels
// ---------------------------------------------------------------------------

TEST(EmbeddingKernels, GatherMatchesReference) {
  const Tensor table = rand_tensor(Shape{{50, 96}}, 51);
  const Tensor ids = Tensor::random_tokens(Shape{{37}}, sim::CounterRng{7}, 50);
  Tensor out = Tensor::zeros(Shape{{37, 96}});
  make_cluster().run(EmbeddingGatherKernel(table, ids, out), ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(out, ops::embedding_gather(table, ids)), 1e-6);
}

TEST(EmbeddingKernels, GradScattersAndAccumulates) {
  const std::int64_t vocab = 10, d = 8, tokens = 64;
  Tensor ids = Tensor::zeros(Shape{{tokens}}, DType::I32);
  for (std::int64_t t = 0; t < tokens; ++t) {
    ids.i32()[static_cast<std::size_t>(t)] = static_cast<std::int32_t>(t % vocab);
  }
  const Tensor dy = rand_tensor(Shape{{tokens, d}}, 52);
  Tensor dtable = Tensor::zeros(Shape{{vocab, d}});
  make_cluster().run(EmbeddingGradKernel(ids, dy, dtable), ExecMode::kFunctional);
  for (std::int64_t v = 0; v < vocab; ++v) {
    for (std::int64_t j = 0; j < d; ++j) {
      double acc = 0.0;
      for (std::int64_t t = v; t < tokens; t += vocab) acc += dy.f32()[t * d + j];
      EXPECT_NEAR(dtable.f32()[v * d + j], acc, 1e-4);
    }
  }
}

TEST(CrossEntropyKernels, MatchReference) {
  const std::int64_t rows = 9, vocab = 133;
  const Tensor logits = rand_tensor(Shape{{rows, vocab}}, 53, -3.0f, 3.0f);
  const Tensor targets = Tensor::random_tokens(Shape{{rows}}, sim::CounterRng{8},
                                               vocab);
  Tensor loss = Tensor::zeros(Shape{{rows}});
  const TpcCluster cluster = make_cluster();
  cluster.run(CrossEntropyKernel(logits, targets, loss), ExecMode::kFunctional);

  Tensor dlogits_ref;
  const double ref_loss = ops::cross_entropy(logits, targets, &dlogits_ref);
  double mean = 0.0;
  for (float v : loss.f32()) mean += v;
  EXPECT_NEAR(mean / rows, ref_loss, 1e-4);

  Tensor dlogits = Tensor::zeros(Shape{{rows, vocab}});
  cluster.run(CrossEntropyGradKernel(logits, targets, dlogits,
                                     1.0f / static_cast<float>(rows)),
              ExecMode::kFunctional);
  EXPECT_LT(ops::max_abs_diff(dlogits, dlogits_ref), 1e-5);
}

// ---------------------------------------------------------------------------
// Numerics edge cases (the guard layer depends on kernels not minting NaN on
// legal-but-degenerate inputs)
// ---------------------------------------------------------------------------

TEST(KernelEdgeCases, SoftmaxFullyMaskedRowIsZero) {
  // An attention row whose mask blanks every position is all -inf; the
  // defined softmax result is a zero row, not the NaN of exp(-inf + inf).
  const float ninf = -std::numeric_limits<float>::infinity();
  const std::int64_t rows = 3, d = 40;
  Tensor x = rand_tensor(Shape{{rows, d}}, 61);
  for (std::int64_t j = 0; j < d; ++j) x.f32()[d + j] = ninf;  // row 1
  x.f32()[2 * d + 5] = ninf;  // row 2: partial mask stays on the normal path
  Tensor y = Tensor::zeros(Shape{{rows, d}});
  make_cluster().run(SoftmaxKernel(x, y), ExecMode::kFunctional);

  for (std::int64_t j = 0; j < d; ++j) {
    EXPECT_EQ(y.f32()[d + j], 0.0f) << "masked row, column " << j;
  }
  for (const std::int64_t r : {std::int64_t{0}, std::int64_t{2}}) {
    float sum = 0.0f;
    for (std::int64_t j = 0; j < d; ++j) {
      const float v = y.f32()[r * d + j];
      EXPECT_TRUE(std::isfinite(v));
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-4f);
  }
  EXPECT_EQ(y.f32()[2 * d + 5], 0.0f);  // masked lane of the partial row
}

TEST(KernelEdgeCases, LayerNormConstantRowsStayFinite) {
  // E[x^2] - mean^2 cancels catastrophically on constant rows; at large
  // magnitudes the rounding residue can be negative, and without the clamp
  // sqrt(var + eps) would go NaN.  Sweep a spread of magnitudes.
  const std::int64_t d = 33;
  const float magnitudes[] = {0.0f,    1.0f,     3.14159f, 1000.0f, 8191.5f,
                              65535.0f, 1.0e6f,  3.3e7f,   1.0e12f, 6.0e18f};
  const std::int64_t rows = std::size(magnitudes);
  Tensor x = Tensor::zeros(Shape{{rows, d}});
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < d; ++j) x.f32()[r * d + j] = magnitudes[r];
  }
  Tensor gamma = Tensor::zeros(Shape{{d}});
  Tensor beta = Tensor::zeros(Shape{{d}});
  for (float& v : gamma.f32()) v = 1.0f;
  for (float& v : beta.f32()) v = 0.25f;
  Tensor y = Tensor::zeros(Shape{{rows, d}});
  Tensor mean = Tensor::zeros(Shape{{rows}});
  Tensor rstd = Tensor::zeros(Shape{{rows}});
  make_cluster().run(LayerNormKernel(x, gamma, beta, y, mean, rstd),
                     ExecMode::kFunctional);

  for (std::int64_t r = 0; r < rows; ++r) {
    EXPECT_TRUE(std::isfinite(rstd.f32()[r])) << "row " << r;
    for (std::int64_t j = 0; j < d; ++j) {
      EXPECT_TRUE(std::isfinite(y.f32()[r * d + j]))
          << "row " << r << " column " << j;
    }
  }
  // A truly constant row normalizes to zero: the output is just beta.
  for (std::int64_t j = 0; j < d; ++j) {
    EXPECT_NEAR(y.f32()[j], 0.25f, 1e-3f);  // row of zeros
  }
}

TEST(KernelEdgeCases, CrossEntropyFullyMaskedRow) {
  // All -inf logits assign the target probability zero: the loss is +inf
  // (not NaN) and the gradient row is zero (not NaN contamination).
  const float ninf = -std::numeric_limits<float>::infinity();
  const std::int64_t rows = 2, vocab = 50;
  Tensor logits = rand_tensor(Shape{{rows, vocab}}, 62, -3.0f, 3.0f);
  for (std::int64_t j = 0; j < vocab; ++j) logits.f32()[vocab + j] = ninf;
  const Tensor targets =
      Tensor::random_tokens(Shape{{rows}}, sim::CounterRng{9}, vocab);
  const TpcCluster c = make_cluster();

  Tensor loss = Tensor::zeros(Shape{{rows}});
  c.run(CrossEntropyKernel(logits, targets, loss), ExecMode::kFunctional);
  EXPECT_TRUE(std::isfinite(loss.f32()[0]));
  EXPECT_TRUE(std::isinf(loss.f32()[1]));
  EXPECT_GT(loss.f32()[1], 0.0f);

  Tensor dlogits = Tensor::zeros(Shape{{rows, vocab}});
  c.run(CrossEntropyGradKernel(logits, targets, dlogits, 1.0f),
        ExecMode::kFunctional);
  for (std::int64_t j = 0; j < vocab; ++j) {
    EXPECT_TRUE(std::isfinite(dlogits.f32()[j])) << "row 0 column " << j;
    EXPECT_EQ(dlogits.f32()[vocab + j], 0.0f) << "masked row, column " << j;
  }
}

}  // namespace
}  // namespace gaudi::tpc

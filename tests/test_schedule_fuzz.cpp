// Schedule/trace invariant fuzzing.
//
// Builds a few hundred seeded random DAGs over the real op inventory,
// schedules them under both policies, and checks every TraceValidator
// invariant plus functional cross-checks.  Deterministic regressions pin the
// two scheduler bugs the validator was built to catch: metadata nodes backed
// by several engines losing (or inventing) DMAs, and the JIT recompile stall
// not gating its triggering node under kOverlap.
#include <gtest/gtest.h>

#include <string>

#include "graph/random_graph.hpp"
#include "graph/runtime.hpp"
#include "graph/validate.hpp"
#include "tensor/ops.hpp"

namespace gaudi::graph {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

sim::ChipConfig chip() { return sim::ChipConfig::hls1(); }

ProfileResult run_timing(const Graph& g, SchedulePolicy policy) {
  Runtime rt(chip());
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.policy = policy;
  return rt.run(g, {}, opts);
}

std::string violations_for(const Graph& g, const std::vector<NodeExec>& execs,
                           const Trace& trace, SchedulePolicy policy) {
  return TraceValidator::format(
      TraceValidator::validate(g, execs, trace, policy, chip()));
}

// ---------------------------------------------------------------------------
// Deterministic regressions
// ---------------------------------------------------------------------------

// A metadata node fed by an MME producer and a TPC producer: its output is
// backed by buffers on both engines, so a TPC consumer still needs the
// MME-side bytes moved.  The scheduler used to track a single source engine
// per value, overwritten per input, so whether the DMA existed depended on
// input order: with the TPC producer last it was silently skipped, with the
// MME producer last the TPC-side bytes were "moved" spuriously.  Runtime
// fusion creates exactly this shape (non-tail chain links run as engine
// kNone), mimicked here by demoting the add's NodeExec.
void check_mixed_engine_metadata(bool mme_input_first) {
  Graph g;
  const ValueId x1 = g.input(Shape{{8, 8}}, DType::F32, "x1");
  const ValueId w = g.param(Shape{{8, 8}}, "w");
  const ValueId x2 = g.input(Shape{{8, 8}}, DType::F32, "x2");
  const ValueId m = g.matmul(x1, w, false, false, "m");   // MME producer
  const ValueId r = g.relu(x2);                           // TPC producer
  const ValueId a = mme_input_first ? g.add(m, r, "link") : g.add(r, m, "link");
  const ValueId y = g.gelu(a);                            // TPC consumer
  g.mark_output(y);

  std::vector<NodeExec> execs = run_timing(g, SchedulePolicy::kBarrier).node_execs;
  NodeId link = -1;
  for (NodeId nid = 0; nid < static_cast<NodeId>(g.num_nodes()); ++nid) {
    if (g.node(nid).label == "link") link = nid;
  }
  ASSERT_GE(link, 0);
  execs[static_cast<std::size_t>(link)].engine = Engine::kNone;
  execs[static_cast<std::size_t>(link)].duration = sim::SimTime::zero();
  execs[static_cast<std::size_t>(link)].flops = 0;

  for (const SchedulePolicy policy :
       {SchedulePolicy::kBarrier, SchedulePolicy::kOverlap}) {
    const Trace trace = schedule(g, execs, chip(), policy);
    // Exactly one DMA: the link's output to the TPC, regardless of which
    // input the metadata node listed last.
    int dmas = 0;
    for (const auto& e : trace.events()) {
      if (e.kind != TraceEventKind::kDma) continue;
      ++dmas;
      EXPECT_EQ(e.value, a);
      EXPECT_EQ(e.dma_dst, Engine::kTpc);
    }
    EXPECT_EQ(dmas, 1) << schedule_policy_name(policy);
    EXPECT_EQ(violations_for(g, execs, trace, policy), "");
  }
}

TEST(ScheduleRegression, MetadataNodeWithMmeProducerFirst) {
  check_mixed_engine_metadata(/*mme_input_first=*/true);
}

TEST(ScheduleRegression, MetadataNodeWithMmeProducerLast) {
  check_mixed_engine_metadata(/*mme_input_first=*/false);
}

TEST(ScheduleRegression, RecompileStallGatesTriggerUnderOverlap) {
  // Under kOverlap the GLU must still wait for the one-time compiler stall;
  // it used to be issued as if the stall were free.
  Graph g;
  const ValueId x = g.input(Shape{{16, 16}}, DType::F32, "x");
  const ValueId w = g.param(Shape{{16, 16}}, "w");
  const ValueId h = g.glu(g.matmul(x, w), /*requires_recompile=*/true, "glu");
  g.mark_output(h);

  const ProfileResult res = run_timing(g, SchedulePolicy::kOverlap);
  EXPECT_EQ(violations_for(g, res.node_execs, res.trace, SchedulePolicy::kOverlap),
            "");
  sim::SimTime stall_end{};
  for (const auto& e : res.trace.events()) {
    if (e.kind == TraceEventKind::kRecompile) stall_end = e.end;
  }
  EXPECT_GT(stall_end, sim::SimTime::zero());
  for (const auto& e : res.trace.events()) {
    if (e.kind == TraceEventKind::kCompute &&
        e.name.find("glu") != std::string::npos) {
      EXPECT_GE(e.start, stall_end);
    }
  }
}

// ---------------------------------------------------------------------------
// Fuzzing
// ---------------------------------------------------------------------------

constexpr std::uint64_t kSeeds = 320;

TEST(ScheduleFuzz, RandomDagsSatisfyAllInvariantsUnderBothPolicies) {
  int dma_events = 0;
  int recompile_events = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    RandomDagOptions opts;
    opts.allow_recompile = seed % 7 == 0;
    const RandomDag dag = random_dag(seed, opts);
    const ProfileResult res = run_timing(dag.graph, SchedulePolicy::kBarrier);

    ASSERT_EQ(violations_for(dag.graph, res.node_execs, res.trace,
                             SchedulePolicy::kBarrier),
              "")
        << "seed " << seed;
    const Trace overlap =
        schedule(dag.graph, res.node_execs, chip(), SchedulePolicy::kOverlap);
    ASSERT_EQ(violations_for(dag.graph, res.node_execs, overlap,
                             SchedulePolicy::kOverlap),
              "")
        << "seed " << seed;
    EXPECT_LE(overlap.makespan(), res.trace.makespan()) << "seed " << seed;

    for (const auto& e : res.trace.events()) {
      dma_events += e.kind == TraceEventKind::kDma;
      recompile_events += e.kind == TraceEventKind::kRecompile;
    }
  }
  // The fuzz corpus must actually exercise the cross-engine and stall paths.
  EXPECT_GT(dma_events, 0);
  EXPECT_GT(recompile_events, 0);
}

TEST(ScheduleFuzz, FusedLinkDemotionKeepsInvariants) {
  // Randomly demote TPC nodes to metadata links, the exec shape runtime
  // fusion produces.  The pre-fix scheduler loses DMAs on seeds where a
  // demoted node merges producers from both engines.
  for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
    const RandomDag dag = random_dag(seed);
    std::vector<NodeExec> execs =
        run_timing(dag.graph, SchedulePolicy::kBarrier).node_execs;

    const sim::CounterRng rng(seed, 0xF00D);
    for (NodeId nid = 0; nid < static_cast<NodeId>(dag.graph.num_nodes()); ++nid) {
      NodeExec& ex = execs[static_cast<std::size_t>(nid)];
      if (ex.engine == Engine::kTpc &&
          rng.below(static_cast<std::uint64_t>(nid), 4) == 0) {
        ex.engine = Engine::kNone;
        ex.duration = sim::SimTime::zero();
        ex.flops = 0;
      }
    }

    for (const SchedulePolicy policy :
         {SchedulePolicy::kBarrier, SchedulePolicy::kOverlap}) {
      const Trace trace = schedule(dag.graph, execs, chip(), policy);
      ASSERT_EQ(violations_for(dag.graph, execs, trace, policy), "")
          << "seed " << seed << " policy " << schedule_policy_name(policy);
    }
  }
}

TEST(ScheduleFuzz, FusionPreservesFunctionalOutputs) {
  // A fused chain's pre-bound kernel applies the exact same scalar ops in
  // the exact same order as the per-op path, so fusion on/off must be
  // bit-identical, not merely close.
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 16) {
    const RandomDag dag = random_dag(seed);
    const auto feeds = random_feeds(dag.graph, seed);

    Runtime rt(chip());
    RunOptions opts;
    opts.mode = tpc::ExecMode::kFunctional;
    const ProfileResult plain = rt.run(dag.graph, feeds, opts);
    opts.fuse_elementwise = true;
    const ProfileResult fused = rt.run(dag.graph, feeds, opts);

    ASSERT_EQ(plain.outputs.size(), fused.outputs.size()) << "seed " << seed;
    for (const auto& [v, t] : plain.outputs) {
      ASSERT_TRUE(fused.outputs.count(v)) << "seed " << seed;
      EXPECT_EQ(ops::max_abs_diff(t, fused.outputs.at(v)), 0.0)
          << "seed " << seed << " value '" << dag.graph.value(v).name << "'";
    }
  }
}

TEST(ScheduleFuzz, FaultInjectedTracesSatisfyAllInvariants) {
  // Random fault schedules over random DAGs: injected TPC stalls and DMA
  // retry chains must still satisfy every validator invariant under both
  // policies, and the trace must be a pure function of the injector seed.
  int stall_events = 0;
  int retry_events = 0;
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 4) {
    const RandomDag dag = random_dag(seed);
    const ProfileResult res = run_timing(dag.graph, SchedulePolicy::kBarrier);
    const sim::FaultInjector faults{seed ^ 0xFA517,
                                    sim::FaultProfile::stress()};
    for (const SchedulePolicy policy :
         {SchedulePolicy::kBarrier, SchedulePolicy::kOverlap}) {
      const Trace trace =
          schedule(dag.graph, res.node_execs, chip(), policy, &faults);
      ASSERT_EQ(violations_for(dag.graph, res.node_execs, trace, policy), "")
          << "seed " << seed << " policy " << schedule_policy_name(policy);
      // Determinism: the same injector reproduces the trace byte-for-byte.
      const Trace again =
          schedule(dag.graph, res.node_execs, chip(), policy, &faults);
      ASSERT_EQ(trace.to_chrome_json(), again.to_chrome_json())
          << "seed " << seed;
      for (const auto& e : trace.events()) {
        stall_events += e.kind == TraceEventKind::kStall;
        retry_events += e.retry > 0;
      }
    }
  }
  // The stress profile must actually exercise both fault paths.
  EXPECT_GT(stall_events, 0);
  EXPECT_GT(retry_events, 0);
}

TEST(ScheduleFuzz, FusionPreservesFunctionalOutputsUnderFaults) {
  // Faults perturb timing, never numerics: fusion on/off stays bit-identical
  // with an injector attached to the run.
  const sim::FaultInjector faults{99, sim::FaultProfile::stress()};
  for (std::uint64_t seed = 0; seed < kSeeds; seed += 32) {
    const RandomDag dag = random_dag(seed);
    const auto feeds = random_feeds(dag.graph, seed);

    Runtime rt(chip());
    RunOptions opts;
    opts.mode = tpc::ExecMode::kFunctional;
    opts.faults = &faults;
    const ProfileResult plain = rt.run(dag.graph, feeds, opts);
    opts.fuse_elementwise = true;
    const ProfileResult fused = rt.run(dag.graph, feeds, opts);

    ASSERT_EQ(plain.outputs.size(), fused.outputs.size()) << "seed " << seed;
    for (const auto& [v, t] : plain.outputs) {
      ASSERT_TRUE(fused.outputs.count(v)) << "seed " << seed;
      EXPECT_EQ(ops::max_abs_diff(t, fused.outputs.at(v)), 0.0)
          << "seed " << seed << " value '" << dag.graph.value(v).name << "'";
    }
  }
}

TEST(ScheduleFuzz, ValidatorFlagsCorruptedFaultTraces) {
  // The fault invariants are only evidence if they can fail: find a fuzz
  // seed whose fault-injected schedule carries both a stall and a retried
  // DMA, then break each invariant in a targeted way.
  const sim::FaultInjector faults{5, sim::FaultProfile::stress()};
  std::uint64_t seed = kSeeds;
  Trace trace;
  RandomDag dag;
  std::vector<NodeExec> execs;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    RandomDag d = random_dag(s);
    ProfileResult res = run_timing(d.graph, SchedulePolicy::kBarrier);
    Trace t = schedule(d.graph, res.node_execs, chip(),
                       SchedulePolicy::kBarrier, &faults);
    bool has_stall = false;
    bool has_retry = false;
    for (const auto& e : t.events()) {
      has_stall |= e.kind == TraceEventKind::kStall;
      has_retry |= e.retry > 0;
    }
    if (has_stall && has_retry) {
      seed = s;
      dag = std::move(d);
      execs = std::move(res.node_execs);
      trace = std::move(t);
      break;
    }
  }
  ASSERT_LT(seed, kSeeds) << "no fuzz seed carried both fault paths";
  ASSERT_EQ(violations_for(dag.graph, execs, trace, SchedulePolicy::kBarrier),
            "");

  auto corrupted = [&](auto mutate) {
    Trace t;
    for (std::size_t i = 0; i < trace.events().size(); ++i) {
      TraceEvent e = trace.events()[i];
      mutate(i, e);
      t.add(e);
    }
    return TraceValidator::format(TraceValidator::validate(
        dag.graph, execs, t, SchedulePolicy::kBarrier, chip()));
  };

  // Shove a stall outside its parent span: stall-nesting.
  std::size_t stall = trace.events().size();
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    if (trace.events()[i].kind == TraceEventKind::kStall) stall = i;
  }
  ASSERT_LT(stall, trace.events().size());
  const auto span = trace.events()[stall].end - trace.events()[stall].start;
  const std::string dangling = corrupted([&](std::size_t i, TraceEvent& e) {
    if (i == stall) {
      e.start = trace.makespan() + span;
      e.end = e.start + span;
    }
  });
  EXPECT_NE(dangling.find("stall-nesting"), std::string::npos);

  // Break a retry chain's attempt numbering: retry-overlap.
  std::size_t retried = trace.events().size();
  for (std::size_t i = 0; i < trace.events().size(); ++i) {
    if (trace.events()[i].retry > 0) retried = i;
  }
  ASSERT_LT(retried, trace.events().size());
  const std::string renumbered = corrupted([&](std::size_t i, TraceEvent& e) {
    if (i == retried) e.retry += 1;
  });
  EXPECT_NE(renumbered.find("retry-overlap"), std::string::npos);

  // Make a retry start before its predecessor finished: retry-overlap.
  const std::string overlapping = corrupted([&](std::size_t i, TraceEvent& e) {
    if (i == retried) {
      const auto d = e.end - e.start;
      e.start = sim::SimTime::zero();
      e.end = d;
    }
  });
  EXPECT_NE(overlapping.find("retry-overlap"), std::string::npos);
}

TEST(ScheduleFuzz, ValidatorFlagsInjectedCorruption) {
  // The fuzz is only evidence if the validator can actually fail: corrupt a
  // scheduled trace in targeted ways and expect the matching invariant.
  // Pick the first seed whose schedule contains a DMA so every corruption
  // below has something to bite on.
  std::uint64_t seed = kSeeds;
  for (std::uint64_t s = 0; s < kSeeds; ++s) {
    const ProfileResult probe =
        run_timing(random_dag(s).graph, SchedulePolicy::kBarrier);
    for (const auto& e : probe.trace.events()) {
      if (e.kind == TraceEventKind::kDma) {
        seed = s;
        break;
      }
    }
    if (seed < kSeeds) break;
  }
  ASSERT_LT(seed, kSeeds) << "no fuzz seed produced a DMA";
  const RandomDag dag = random_dag(seed);
  const ProfileResult res = run_timing(dag.graph, SchedulePolicy::kBarrier);
  ASSERT_EQ(violations_for(dag.graph, res.node_execs, res.trace,
                           SchedulePolicy::kBarrier),
            "");

  auto corrupted = [&](auto mutate) {
    Trace t;
    for (std::size_t i = 0; i < res.trace.events().size(); ++i) {
      TraceEvent e = res.trace.events()[i];
      mutate(i, e);
      t.add(e);
    }
    return TraceValidator::format(TraceValidator::validate(
        dag.graph, res.node_execs, t, SchedulePolicy::kBarrier, chip()));
  };

  // Shift the last late compute event's start to t=0: its duration no longer
  // matches its NodeExec, and typically its dependencies break too.
  std::size_t late = res.trace.events().size();
  for (std::size_t i = 0; i < res.trace.events().size(); ++i) {
    const TraceEvent& e = res.trace.events()[i];
    if (e.kind == TraceEventKind::kCompute && e.start > sim::SimTime::zero()) {
      late = i;
    }
  }
  ASSERT_LT(late, res.trace.events().size());
  const std::string shifted = corrupted([&](std::size_t i, TraceEvent& e) {
    if (i == late) e.start = sim::SimTime::zero();
  });
  EXPECT_NE(shifted, "");

  // Inflate one event's flops: exec-match.
  std::size_t first_compute = res.trace.events().size();
  for (std::size_t i = 0; i < res.trace.events().size(); ++i) {
    if (res.trace.events()[i].kind == TraceEventKind::kCompute) {
      first_compute = i;
      break;
    }
  }
  ASSERT_LT(first_compute, res.trace.events().size());
  const std::string wrong_flops = corrupted([&](std::size_t i, TraceEvent& e) {
    if (i == first_compute) e.flops += 1;
  });
  EXPECT_NE(wrong_flops.find("exec-match"), std::string::npos);

  // Drop every DMA: missing-dma.
  Trace no_dma;
  for (const TraceEvent& e : res.trace.events()) {
    if (e.kind != TraceEventKind::kDma) no_dma.add(e);
  }
  const std::string missing = TraceValidator::format(TraceValidator::validate(
      dag.graph, res.node_execs, no_dma, SchedulePolicy::kBarrier, chip()));
  EXPECT_NE(missing.find("missing-dma"), std::string::npos);
}

}  // namespace
}  // namespace gaudi::graph

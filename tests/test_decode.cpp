// Autoregressive-decoding tests: concat/slice kernels, graph plumbing, and
// the prefill/decode consistency property (a decode step with caches must
// reproduce the full-forward logits exactly).
#include <gtest/gtest.h>

#include <cmath>

#include "graph/autodiff.hpp"
#include "graph/runtime.hpp"
#include "nn/decode.hpp"
#include "nn/models.hpp"
#include "tensor/ops.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"
#include "workload/corpus.hpp"

namespace gaudi::nn {
namespace {

namespace ops = gaudi::tensor::ops;
using graph::Graph;
using graph::ValueId;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

tpc::TpcCluster cluster() { return tpc::TpcCluster(sim::ChipConfig::hls1().tpc); }

TEST(ConcatRowsKernel, MatchesManualConcat) {
  const Tensor a = Tensor::uniform(Shape{{2, 3, 5}}, sim::CounterRng{201});
  const Tensor b = Tensor::uniform(Shape{{2, 4, 5}}, sim::CounterRng{202});
  Tensor out = Tensor::zeros(Shape{{2, 7, 5}});
  cluster().run(tpc::ConcatRowsKernel(a, b, out), tpc::ExecMode::kFunctional);
  for (int batch = 0; batch < 2; ++batch) {
    for (int r = 0; r < 7; ++r) {
      for (int c = 0; c < 5; ++c) {
        const float expect = r < 3 ? a.f32()[(batch * 3 + r) * 5 + c]
                                   : b.f32()[(batch * 4 + (r - 3)) * 5 + c];
        EXPECT_EQ(out.f32()[(batch * 7 + r) * 5 + c], expect);
      }
    }
  }
}

TEST(SliceRowsKernel, ExtractsRange) {
  const Tensor in = Tensor::uniform(Shape{{3, 8, 6}}, sim::CounterRng{203});
  Tensor out = Tensor::zeros(Shape{{3, 2, 6}});
  cluster().run(tpc::SliceRowsKernel(in, out, 5), tpc::ExecMode::kFunctional);
  for (int batch = 0; batch < 3; ++batch) {
    for (int r = 0; r < 2; ++r) {
      for (int c = 0; c < 6; ++c) {
        EXPECT_EQ(out.f32()[(batch * 2 + r) * 6 + c],
                  in.f32()[(batch * 8 + 5 + r) * 6 + c]);
      }
    }
  }
  EXPECT_THROW(tpc::SliceRowsKernel(in, out, 7), sim::InvalidArgument);
}

TEST(GraphOps, ConcatThenSliceRoundTrips) {
  Graph g;
  const ValueId a = g.input(Shape{{2, 3, 4}}, DType::F32, "a");
  const ValueId b = g.input(Shape{{2, 2, 4}}, DType::F32, "b");
  const ValueId cat = g.concat_rows(a, b);
  EXPECT_TRUE(g.value(cat).shape == (Shape{{2, 5, 4}}));
  const ValueId back_a = g.slice_rows(cat, 0, 3);
  const ValueId back_b = g.slice_rows(cat, 3, 2);
  g.mark_output(back_a);
  g.mark_output(back_b);

  const Tensor av = Tensor::uniform(Shape{{2, 3, 4}}, sim::CounterRng{204});
  const Tensor bv = Tensor::uniform(Shape{{2, 2, 4}}, sim::CounterRng{205});
  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  const auto result = rt.run(g, {{a, av}, {b, bv}}, opts);
  EXPECT_EQ(ops::max_abs_diff(result.outputs.at(back_a), av), 0.0);
  EXPECT_EQ(ops::max_abs_diff(result.outputs.at(back_b), bv), 0.0);
}

TEST(GraphOps, ConcatGradientSplits) {
  Graph g;
  const ValueId a = g.param(Shape{{2, 3}}, "a");
  const ValueId b = g.param(Shape{{1, 3}}, "b");
  const ValueId cat = g.concat_rows(a, b);  // [3, 3]
  const ValueId w = g.param(Shape{{3, 1}}, "w");
  const ValueId loss =
      g.reduce_mean(g.reshape(g.matmul(cat, w), Shape{{1, 3}}));
  const ValueId wrt[] = {a, b};
  const auto back = graph::build_backward(g, loss, wrt);
  g.mark_output(back.grads.at(a));
  g.mark_output(back.grads.at(b));

  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  const Tensor wv = Tensor::uniform(Shape{{3, 1}}, sim::CounterRng{206});
  const auto result = rt.run(g,
                             {{a, Tensor::zeros(Shape{{2, 3}})},
                              {b, Tensor::zeros(Shape{{1, 3}})},
                              {w, wv}},
                             opts);
  // dcat[r, c] = w[c] / 3; both slices carry it.
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(result.outputs.at(back.grads.at(a)).f32()[c],
                wv.f32()[c] / 3.0f, 1e-6f);
    EXPECT_NEAR(result.outputs.at(back.grads.at(b)).f32()[c],
                wv.f32()[c] / 3.0f, 1e-6f);
  }
}

// ---------------------------------------------------------------------------
// Prefill / decode
// ---------------------------------------------------------------------------

TEST(Decode, PrefillExposesCachesWithRightShapes) {
  Graph g;
  const DecodeConfig cfg = DecodeConfig::tiny();
  const PrefillGraph pre = build_gpt_prefill(g, cfg, 5);
  ASSERT_EQ(pre.caches.size(), static_cast<std::size_t>(cfg.n_layers));
  for (const auto& cache : pre.caches) {
    EXPECT_TRUE(g.value(cache.k).shape ==
                (Shape{{cfg.batch, cfg.heads, 5, cfg.head_dim}}));
    EXPECT_TRUE(g.value(cache.v).shape ==
                (Shape{{cfg.batch, cfg.heads, 5, cfg.head_dim}}));
  }
  EXPECT_TRUE(g.value(pre.last_logits).shape == (Shape{{cfg.batch, cfg.vocab}}));
}

TEST(Decode, StepMatchesFullForwardExactly) {
  const DecodeConfig cfg = DecodeConfig::tiny();
  const std::int64_t ctx = 5;
  const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 71});
  const Tensor ids_full = corpus.batch(cfg.batch, ctx + 1);

  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;

  // Reference: full forward over ctx+1 tokens.
  Graph g_ref;
  const PrefillGraph ref = build_gpt_prefill(g_ref, cfg, ctx + 1);
  auto ref_feeds = ref.params.init_feeds(g_ref);
  ref_feeds.emplace(ref.token_ids, ids_full);
  ref_feeds.emplace(ref.causal_mask, make_causal_mask(ctx + 1));
  const Tensor ref_logits =
      rt.run(g_ref, ref_feeds, opts).outputs.at(ref.last_logits);

  // Prefill over the first ctx tokens to obtain caches.
  Graph g_pre;
  const PrefillGraph pre = build_gpt_prefill(g_pre, cfg, ctx);
  Tensor ids_prefix = Tensor::zeros(Shape{{cfg.batch, ctx}}, DType::I32);
  Tensor ids_last = Tensor::zeros(Shape{{cfg.batch, 1}}, DType::I32);
  for (std::int64_t r = 0; r < cfg.batch; ++r) {
    for (std::int64_t j = 0; j < ctx; ++j) {
      ids_prefix.i32()[static_cast<std::size_t>(r * ctx + j)] =
          ids_full.i32()[static_cast<std::size_t>(r * (ctx + 1) + j)];
    }
    ids_last.i32()[static_cast<std::size_t>(r)] =
        ids_full.i32()[static_cast<std::size_t>(r * (ctx + 1) + ctx)];
  }
  auto pre_feeds = pre.params.init_feeds(g_pre);
  pre_feeds.emplace(pre.token_ids, ids_prefix);
  pre_feeds.emplace(pre.causal_mask, make_causal_mask(ctx));
  const auto pre_result = rt.run(g_pre, pre_feeds, opts);

  // Decode the final token against the caches.
  Graph g_dec;
  const DecodeStepGraph dec = build_gpt_decode_step(g_dec, cfg, ctx);
  auto dec_feeds = dec.params.init_feeds(g_dec);
  dec_feeds.emplace(dec.token_ids, ids_last);
  for (std::size_t l = 0; l < dec.cache_inputs.size(); ++l) {
    dec_feeds.emplace(dec.cache_inputs[l].k,
                      pre_result.outputs.at(pre.caches[l].k));
    dec_feeds.emplace(dec.cache_inputs[l].v,
                      pre_result.outputs.at(pre.caches[l].v));
  }
  const auto dec_result = rt.run(g_dec, dec_feeds, opts);
  const Tensor dec_logits = dec_result.outputs.at(dec.logits);

  // Same parameters (same seed), same math: logits agree to float noise.
  EXPECT_LT(ops::max_abs_diff(dec_logits, ref_logits), 1e-4);

  // And the returned caches grew by one row.
  EXPECT_TRUE(g_dec.value(dec.cache_outputs[0].k).shape ==
              (Shape{{cfg.batch, cfg.heads, ctx + 1, cfg.head_dim}}));
}

TEST(Decode, GenerationLoopRunsGreedily) {
  // Drive a 4-token greedy generation purely through decode steps.
  const DecodeConfig cfg = DecodeConfig::tiny();
  const workload::SyntheticCorpus corpus({cfg.vocab, 1.1, 72});
  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;

  // Prefill a 3-token prompt.
  Graph g_pre;
  const PrefillGraph pre = build_gpt_prefill(g_pre, cfg, 3);
  auto pre_feeds = pre.params.init_feeds(g_pre);
  pre_feeds.emplace(pre.token_ids, corpus.batch(cfg.batch, 3));
  pre_feeds.emplace(pre.causal_mask, make_causal_mask(3));
  auto state = rt.run(g_pre, pre_feeds, opts);

  std::vector<Tensor> cache_k, cache_v;
  for (const auto& c : pre.caches) {
    cache_k.push_back(state.outputs.at(c.k));
    cache_v.push_back(state.outputs.at(c.v));
  }
  // Greedy next token from the prefill logits.
  auto argmax_tokens = [&](const Tensor& logits) {
    Tensor ids = Tensor::zeros(Shape{{cfg.batch, 1}}, DType::I32);
    for (std::int64_t r = 0; r < cfg.batch; ++r) {
      std::int64_t best = 0;
      for (std::int64_t v = 1; v < cfg.vocab; ++v) {
        if (logits.f32()[static_cast<std::size_t>(r * cfg.vocab + v)] >
            logits.f32()[static_cast<std::size_t>(r * cfg.vocab + best)]) {
          best = v;
        }
      }
      ids.i32()[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(best);
    }
    return ids;
  };
  Tensor next = argmax_tokens(state.outputs.at(pre.last_logits));

  for (std::int64_t step = 0; step < 4; ++step) {
    const std::int64_t ctx = 3 + step;
    Graph g_dec;
    const DecodeStepGraph dec = build_gpt_decode_step(g_dec, cfg, ctx);
    auto feeds = dec.params.init_feeds(g_dec);
    feeds.emplace(dec.token_ids, next);
    for (std::size_t l = 0; l < cache_k.size(); ++l) {
      feeds.emplace(dec.cache_inputs[l].k, cache_k[l]);
      feeds.emplace(dec.cache_inputs[l].v, cache_v[l]);
    }
    const auto result = rt.run(g_dec, feeds, opts);
    for (std::size_t l = 0; l < cache_k.size(); ++l) {
      cache_k[l] = result.outputs.at(dec.cache_outputs[l].k);
      cache_v[l] = result.outputs.at(dec.cache_outputs[l].v);
    }
    next = argmax_tokens(result.outputs.at(dec.logits));
    for (std::int32_t id : next.i32()) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, cfg.vocab);
    }
  }
  // Caches grew to prompt + generated length.
  EXPECT_EQ(cache_k[0].shape()[2], 7);
}

}  // namespace
}  // namespace gaudi::nn

// Cross-feature integration tests: features composed the way a real user
// composes them — fusion + optimizer + scheduler policies on full models,
// artifact outputs (Chrome trace, HTML, DOT), and the regression-baseline
// workflow over a reproduced figure.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/baseline.hpp"
#include "core/cli.hpp"
#include "core/experiments.hpp"
#include "graph/printer.hpp"
#include "graph/runtime.hpp"
#include "nn/decode.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace gaudi {
namespace {

namespace ops = gaudi::tensor::ops;
using graph::Graph;

const sim::ChipConfig& chip() {
  static const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  return cfg;
}

TEST(Integration, FullTrainingPipelineWithAllFeatures) {
  // Model + loss + backward + Adam, fused, overlap-scheduled, in timing
  // mode at paper scale: the maximal composition must run clean and be
  // faster than (or equal to) the plain barrier schedule.
  Graph g;
  const nn::LmConfig cfg = nn::LmConfig::gpt2_paper();
  const nn::LanguageModel model = nn::build_language_model(g, cfg);
  nn::OptimizerConfig ocfg;
  ocfg.kind = nn::OptimizerKind::kAdam;
  (void)nn::append_optimizer(g, model, ocfg);

  graph::Runtime rt(chip());
  graph::RunOptions plain;
  plain.mode = tpc::ExecMode::kTiming;
  const auto base = rt.run(g, {}, plain);

  graph::RunOptions tuned = plain;
  tuned.policy = graph::SchedulePolicy::kOverlap;
  tuned.fuse_elementwise = true;
  const auto best = rt.run(g, {}, tuned);

  EXPECT_LE(best.makespan, base.makespan);
  EXPECT_LE(best.hbm_peak_bytes, base.hbm_peak_bytes);
  EXPECT_GT(best.trace.busy_matching("adam", graph::Engine::kTpc),
            sim::SimTime::zero());
}

TEST(Integration, FunctionalOutputsInvariantToPolicyAndFusion) {
  // Scheduling and fusion change time, never numerics.
  Graph g;
  nn::LmConfig cfg = nn::LmConfig::tiny(nn::LmArch::kBert);
  cfg.n_layers = 1;
  const nn::LanguageModel model = nn::build_language_model(g, cfg);
  auto feeds = model.params.init_feeds(g);
  feeds.emplace(model.token_ids,
                tensor::Tensor::random_tokens(
                    tensor::Shape{{cfg.batch, cfg.seq_len}},
                    sim::CounterRng{5}, cfg.vocab));
  feeds.emplace(model.targets,
                tensor::Tensor::random_tokens(tensor::Shape{{cfg.tokens()}},
                                              sim::CounterRng{6}, cfg.vocab));

  graph::Runtime rt(chip());
  std::vector<double> losses;
  for (const bool fuse : {false, true}) {
    for (const auto policy :
         {graph::SchedulePolicy::kBarrier, graph::SchedulePolicy::kOverlap}) {
      graph::RunOptions opts;
      opts.mode = tpc::ExecMode::kFunctional;
      opts.policy = policy;
      opts.fuse_elementwise = fuse;
      losses.push_back(rt.run(g, feeds, opts).outputs.at(model.loss).at(0));
    }
  }
  for (std::size_t i = 1; i < losses.size(); ++i) {
    EXPECT_EQ(losses[i], losses[0]);
  }
}

TEST(Integration, CliWritesAllArtifacts) {
  const std::string trace = "itest.trace.json";
  const std::string html = "itest.html";
  const std::string dot = "itest.dot";
  std::ostringstream out;
  const int rc = core::run_cli(
      {"gaudisim_cli", "profile-model", "--arch", "bert", "--seq", "128",
       "--batch", "2", "--layers", "1", "--trace", trace, "--html", html,
       "--dot", dot},
      out);
  EXPECT_EQ(rc, 0);

  auto file_starts_with = [](const std::string& path, const std::string& prefix) {
    std::ifstream f(path);
    if (!f.good()) return false;
    std::string head(prefix.size(), '\0');
    f.read(head.data(), static_cast<std::streamsize>(prefix.size()));
    return head == prefix;
  };
  EXPECT_TRUE(file_starts_with(trace, "{\"traceEvents\""));
  EXPECT_TRUE(file_starts_with(html, "<!DOCTYPE html>"));
  EXPECT_TRUE(file_starts_with(dot, "digraph"));
  std::remove(trace.c_str());
  std::remove(html.c_str());
  std::remove(dot.c_str());
}

TEST(Integration, BaselineRegressionWorkflowOnFig4) {
  // Record a baseline of the Fig 4 reproduction, rerun, compare: the
  // simulator is deterministic, so zero drift; a perturbed baseline trips.
  core::LayerExperiment exp;
  exp.attention.kind = nn::AttentionKind::kSoftmax;
  const auto first = core::run_layer_profile(exp, chip());
  const core::Baseline recorded = core::baseline_from(first.summary);

  const auto second = core::run_layer_profile(exp, chip());
  EXPECT_TRUE(
      core::compare(recorded, core::baseline_from(second.summary), 1e-12)
          .empty());

  core::Baseline perturbed = recorded;
  perturbed.metrics["makespan_ms"] *= 1.5;
  EXPECT_FALSE(
      core::compare(perturbed, core::baseline_from(second.summary), 0.05)
          .empty());
}

TEST(Integration, DecodeGraphExportsAndProfilesUnderFusion) {
  Graph g;
  nn::DecodeConfig cfg = nn::DecodeConfig::gpt2_paper();
  cfg.batch = 4;
  (void)nn::build_gpt_decode_step(g, cfg, 1024);

  const std::string dot = graph::to_dot(g);
  EXPECT_NE(dot.find("cache_k_append"), std::string::npos);
  EXPECT_NE(dot.find("decode.cache_k0"), std::string::npos);

  graph::Runtime rt(chip());
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.fuse_elementwise = true;
  opts.policy = graph::SchedulePolicy::kOverlap;
  const auto result = rt.run(g, {}, opts);
  EXPECT_GT(result.makespan, sim::SimTime::zero());
  EXPECT_GT(result.trace.busy_matching("cache_k_append", graph::Engine::kTpc),
            sim::SimTime::zero());
}

TEST(Integration, GraphErrorPathsSurfaceCleanly) {
  Graph g;
  const auto a = g.input(tensor::Shape{{2, 3, 4}}, tensor::DType::F32, "a");
  const auto b = g.input(tensor::Shape{{2, 3, 5}}, tensor::DType::F32, "b");
  EXPECT_THROW(g.concat_rows(a, b), sim::InvalidArgument);    // cols differ
  EXPECT_THROW(g.slice_rows(a, 2, 5), sim::InvalidArgument);  // out of range
  EXPECT_THROW(g.swap_axes12(g.input(tensor::Shape{{2, 3}}, tensor::DType::F32,
                                     "r2")),
               sim::InvalidArgument);                          // needs rank 4
  EXPECT_THROW(g.cast(a, tensor::DType::F32), sim::InvalidArgument);
  EXPECT_THROW(g.glu(b), sim::InvalidArgument);               // odd trailing
}

}  // namespace
}  // namespace gaudi

// Autodiff tests: every gradient rule checked against central differences
// through full functional runs of the graph runtime.
#include <gtest/gtest.h>

#include <functional>

#include "graph/autodiff.hpp"
#include "graph/runtime.hpp"
#include "tensor/ops.hpp"

namespace gaudi::graph {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

struct GradCheck {
  Graph g;
  std::unordered_map<ValueId, Tensor> feeds;
  ValueId loss = kInvalidValue;
  std::vector<ValueId> wrt;

  /// Runs forward and returns the scalar loss.
  double loss_value() {
    Runtime rt;
    RunOptions opts;
    opts.mode = tpc::ExecMode::kFunctional;
    g.mark_output(loss);
    const auto result = rt.run(g, feeds, opts);
    return result.outputs.at(loss).at(0);
  }

  /// Builds the backward graph and checks every wrt gradient by central
  /// differences on a sample of coordinates.
  void check(double tol = 2e-2, int max_coords = 6) {
    const BackwardResult back = build_backward(g, loss, wrt);
    g.mark_output(loss);
    for (const ValueId w : wrt) g.mark_output(back.grads.at(w));

    Runtime rt;
    RunOptions opts;
    opts.mode = tpc::ExecMode::kFunctional;
    const auto result = rt.run(g, feeds, opts);

    for (const ValueId w : wrt) {
      const Tensor grad = result.outputs.at(back.grads.at(w));
      Tensor& param = feeds.at(w);
      const std::int64_t n = param.numel();
      const std::int64_t step = std::max<std::int64_t>(1, n / max_coords);
      for (std::int64_t i = 0; i < n; i += step) {
        const auto idx = static_cast<std::size_t>(i);
        const float orig = param.f32()[idx];
        const float h = 1e-2f;
        param.f32()[idx] = orig + h;
        const double lp = loss_value();
        param.f32()[idx] = orig - h;
        const double lm = loss_value();
        param.f32()[idx] = orig;
        const double fd = (lp - lm) / (2.0 * h);
        EXPECT_NEAR(grad.f32()[idx], fd, tol * std::max(1.0, std::abs(fd)))
            << "value " << g.value(w).name << " coord " << i;
      }
    }
  }
};

Tensor rnd(Shape shape, std::uint64_t stream, float lo = -1.0f, float hi = 1.0f) {
  return Tensor::uniform(std::move(shape), sim::CounterRng{0xDD}.stream(stream), lo,
                         hi);
}

/// loss = mean over all elements (flattened to one row).
ValueId mean_all(Graph& g, ValueId x) {
  const std::int64_t n = g.value(x).shape.numel();
  return g.reduce_mean(g.reshape(x, Shape{{1, n}}), "mean_all");
}

TEST(Autodiff, MatmulBothOperands) {
  GradCheck gc;
  const ValueId a = gc.g.param(Shape{{3, 4}}, "a");
  const ValueId b = gc.g.param(Shape{{4, 5}}, "b");
  gc.loss = mean_all(gc.g, gc.g.matmul(a, b));
  gc.feeds = {{a, rnd(Shape{{3, 4}}, 1)}, {b, rnd(Shape{{4, 5}}, 2)}};
  gc.wrt = {a, b};
  gc.check();
}

TEST(Autodiff, MatmulWithTransposes) {
  GradCheck gc;
  const ValueId a = gc.g.param(Shape{{4, 3}}, "a");  // used transposed
  const ValueId b = gc.g.param(Shape{{5, 4}}, "b");  // used transposed
  gc.loss = mean_all(gc.g, gc.g.matmul(a, b, true, true));
  gc.feeds = {{a, rnd(Shape{{4, 3}}, 3)}, {b, rnd(Shape{{5, 4}}, 4)}};
  gc.wrt = {a, b};
  gc.check();
}

TEST(Autodiff, MatmulFusedBias) {
  GradCheck gc;
  const ValueId a = gc.g.param(Shape{{3, 4}}, "a");
  const ValueId b = gc.g.param(Shape{{4, 5}}, "b");
  const ValueId bias = gc.g.param(Shape{{5}}, "bias");
  gc.loss = mean_all(gc.g, gc.g.unary(tpc::UnaryKind::kTanh,
                                      gc.g.matmul_bias(a, b, bias)));
  gc.feeds = {{a, rnd(Shape{{3, 4}}, 5)},
              {b, rnd(Shape{{4, 5}}, 6)},
              {bias, rnd(Shape{{5}}, 7)}};
  gc.wrt = {a, b, bias};
  gc.check();
}

TEST(Autodiff, BatchedMatmul) {
  GradCheck gc;
  const ValueId a = gc.g.param(Shape{{2, 3, 4}}, "a");
  const ValueId b = gc.g.param(Shape{{2, 4, 3}}, "b");
  gc.loss = mean_all(gc.g, gc.g.matmul(a, b));
  gc.feeds = {{a, rnd(Shape{{2, 3, 4}}, 8)}, {b, rnd(Shape{{2, 4, 3}}, 9)}};
  gc.wrt = {a, b};
  gc.check();
}

TEST(Autodiff, BatchedTimesSharedMatmulReducesOverBatch) {
  // dB of a shared (rank-2) right operand sums over the batch; checked by
  // central differences like everything else.
  GradCheck gc;
  const ValueId a = gc.g.param(Shape{{2, 3, 4}}, "a");
  const ValueId b = gc.g.param(Shape{{4, 5}}, "b");
  gc.loss = mean_all(gc.g, gc.g.unary(tpc::UnaryKind::kTanh, gc.g.matmul(a, b)));
  gc.feeds = {{a, rnd(Shape{{2, 3, 4}}, 101)}, {b, rnd(Shape{{4, 5}}, 102)}};
  gc.wrt = {a, b};
  gc.check();
}

TEST(Autodiff, BatchedTransposedTimesSharedMatmul) {
  // The Linformer pattern: matmul(K, E, trans_a=true) with batched K and a
  // shared projection E.
  GradCheck gc;
  const ValueId k = gc.g.param(Shape{{2, 2, 6, 3}}, "k");  // [B,H,N,D]
  const ValueId e = gc.g.param(Shape{{6, 4}}, "e");        // [N, k_lin]
  gc.loss = mean_all(gc.g, gc.g.unary(tpc::UnaryKind::kTanh,
                                      gc.g.matmul(k, e, true, false)));
  gc.feeds = {{k, rnd(Shape{{2, 2, 6, 3}}, 103)}, {e, rnd(Shape{{6, 4}}, 104)}};
  gc.wrt = {k, e};
  gc.check();
}

TEST(Autodiff, BatchedTimesSharedTransposedMatmul) {
  GradCheck gc;
  const ValueId a = gc.g.param(Shape{{3, 4, 5}}, "a");
  const ValueId b = gc.g.param(Shape{{6, 5}}, "b");  // used transposed
  gc.loss = mean_all(gc.g, gc.g.unary(tpc::UnaryKind::kTanh,
                                      gc.g.matmul(a, b, false, true)));
  gc.feeds = {{a, rnd(Shape{{3, 4, 5}}, 105)}, {b, rnd(Shape{{6, 5}}, 106)}};
  gc.wrt = {a, b};
  gc.check();
}

TEST(Autodiff, ElementwiseBinaryOps) {
  GradCheck gc;
  const ValueId a = gc.g.param(Shape{{8}}, "a");
  const ValueId b = gc.g.param(Shape{{8}}, "b");
  // mix of add/sub/mul/div: loss = mean(((a+b)*(a-b)) / (b+3))
  const ValueId num = gc.g.mul(gc.g.add(a, b), gc.g.sub(a, b));
  const ValueId den = gc.g.add_scalar(b, 3.0f);
  gc.loss = mean_all(gc.g, gc.g.div(num, den));
  gc.feeds = {{a, rnd(Shape{{8}}, 10)}, {b, rnd(Shape{{8}}, 11)}};
  gc.wrt = {a, b};
  gc.check();
}

TEST(Autodiff, ScalarOpsAndUnaryChain) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{10}}, "x");
  const ValueId h =
      gc.g.mul_scalar(gc.g.add_scalar(gc.g.unary(tpc::UnaryKind::kSigmoid, x), 0.5f),
                      2.0f);
  gc.loss = mean_all(gc.g, gc.g.unary(tpc::UnaryKind::kTanh, h));
  gc.feeds = {{x, rnd(Shape{{10}}, 12)}};
  gc.wrt = {x};
  gc.check();
}

TEST(Autodiff, GradAccumulationAcrossConsumers) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{6}}, "x");
  // x feeds three consumers; gradients must sum.
  const ValueId y =
      gc.g.add(gc.g.mul(x, x), gc.g.mul_scalar(x, 3.0f));
  gc.loss = mean_all(gc.g, gc.g.add(y, gc.g.unary(tpc::UnaryKind::kTanh, x)));
  gc.feeds = {{x, rnd(Shape{{6}}, 13)}};
  gc.wrt = {x};
  gc.check();
}

TEST(Autodiff, SoftmaxThroughMean) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{4, 9}}, "x");
  const ValueId w = gc.g.param(Shape{{9, 1}}, "w");
  // Weighted softmax output so the gradient is nontrivial.
  gc.loss = mean_all(gc.g, gc.g.matmul(gc.g.softmax(x), w));
  gc.feeds = {{x, rnd(Shape{{4, 9}}, 14, -2.0f, 2.0f)},
              {w, rnd(Shape{{9, 1}}, 15)}};
  gc.wrt = {x};
  gc.check();
}

TEST(Autodiff, LayerNormAllThreeGradients) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{5, 12}}, "x");
  const ValueId gamma = gc.g.param(Shape{{12}}, "gamma");
  const ValueId beta = gc.g.param(Shape{{12}}, "beta");
  const ValueId w = gc.g.param(Shape{{12, 1}}, "w");
  const ValueId y = gc.g.layernorm(x, gamma, beta)[0];
  gc.loss = mean_all(gc.g, gc.g.matmul(gc.g.unary(tpc::UnaryKind::kTanh, y), w));
  gc.feeds = {{x, rnd(Shape{{5, 12}}, 16)},
              {gamma, rnd(Shape{{12}}, 17, 0.5f, 1.5f)},
              {beta, rnd(Shape{{12}}, 18)},
              {w, rnd(Shape{{12, 1}}, 19)}};
  gc.wrt = {x, gamma, beta};
  gc.check(5e-2);
}

TEST(Autodiff, GluGradient) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{4, 10}}, "x");
  gc.loss = mean_all(gc.g, gc.g.glu(x, false));
  gc.feeds = {{x, rnd(Shape{{4, 10}}, 20)}};
  gc.wrt = {x};
  gc.check();
}

TEST(Autodiff, ReduceAndBroadcast) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{3, 7}}, "x");
  const ValueId s = gc.g.reduce_sum(x);                 // [3,1]
  const ValueId wide = gc.g.broadcast_last(s, 7);       // [3,7]
  gc.loss = mean_all(gc.g, gc.g.mul(wide, x));
  gc.feeds = {{x, rnd(Shape{{3, 7}}, 21)}};
  gc.wrt = {x};
  gc.check();
}

TEST(Autodiff, RowvecOps) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{4, 6}}, "x");
  const ValueId v = gc.g.param(Shape{{6}}, "v");
  const ValueId h = gc.g.add_rowvec(x, v);
  const ValueId m = gc.g.add_op(OpKind::kMulRowvec, {h, v}, {}, "mul_rowvec")[0];
  gc.loss = mean_all(gc.g, gc.g.unary(tpc::UnaryKind::kTanh, m));
  gc.feeds = {{x, rnd(Shape{{4, 6}}, 22)}, {v, rnd(Shape{{6}}, 23, 0.5f, 1.5f)}};
  gc.wrt = {x, v};
  gc.check();
}

TEST(Autodiff, TransposeAndReshape) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{3, 4}}, "x");
  const ValueId t = gc.g.transpose(x);                       // [4,3]
  const ValueId r = gc.g.reshape(t, Shape{{2, 6}});
  gc.loss = mean_all(gc.g, gc.g.mul(r, r));
  gc.feeds = {{x, rnd(Shape{{3, 4}}, 24)}};
  gc.wrt = {x};
  gc.check();
}

TEST(Autodiff, SwapAxes12) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{2, 3, 4, 5}}, "x");
  const ValueId s = gc.g.swap_axes12(x);
  gc.loss = mean_all(gc.g, gc.g.mul(s, s));
  gc.feeds = {{x, rnd(Shape{{2, 3, 4, 5}}, 25)}};
  gc.wrt = {x};
  gc.check();
}

TEST(Autodiff, AddMaskGradsPosEmbedding) {
  GradCheck gc;
  const ValueId x = gc.g.param(Shape{{2, 3, 4}}, "x");
  const ValueId pos = gc.g.param(Shape{{3, 4}}, "pos");
  const ValueId y = gc.g.add_op(OpKind::kAddMask2D, {x, pos}, {}, "pos_add")[0];
  gc.loss = mean_all(gc.g, gc.g.unary(tpc::UnaryKind::kTanh, y));
  gc.feeds = {{x, rnd(Shape{{2, 3, 4}}, 26)}, {pos, rnd(Shape{{3, 4}}, 27)}};
  gc.wrt = {x, pos};
  gc.check();
}

TEST(Autodiff, EmbeddingGradient) {
  GradCheck gc;
  const ValueId table = gc.g.param(Shape{{7, 4}}, "table");
  const ValueId ids = gc.g.input(Shape{{5}}, DType::I32, "ids");
  const ValueId emb = gc.g.embedding(table, ids);
  gc.loss = mean_all(gc.g, gc.g.mul(emb, emb));
  Tensor idv = Tensor::zeros(Shape{{5}}, DType::I32);
  for (int i = 0; i < 5; ++i) idv.i32()[i] = (i * 3) % 7;
  gc.feeds = {{table, rnd(Shape{{7, 4}}, 28)}, {ids, idv}};
  gc.wrt = {table};
  gc.check();
}

TEST(Autodiff, CrossEntropyTerminalLoss) {
  GradCheck gc;
  const ValueId w = gc.g.param(Shape{{6, 9}}, "w");
  const ValueId x = gc.g.input(Shape{{4, 6}}, DType::F32, "x");
  const ValueId targets = gc.g.input(Shape{{4}}, DType::I32, "targets");
  const ValueId logits = gc.g.matmul(x, w);
  gc.loss = gc.g.cross_entropy_mean(logits, targets);
  Tensor tv = Tensor::zeros(Shape{{4}}, DType::I32);
  for (int i = 0; i < 4; ++i) tv.i32()[i] = (2 * i) % 9;
  gc.feeds = {{w, rnd(Shape{{6, 9}}, 29)},
              {x, rnd(Shape{{4, 6}}, 30)},
              {targets, tv}};
  gc.wrt = {w};
  gc.check();
}

TEST(Autodiff, CrossEntropyAcceptsScalarUpstreamGradient) {
  // The loss-scaling path differentiates scale * ce (see nn/train.hpp), so
  // a scalar gradient flowing into cross_entropy_mean is legal and must
  // chain through — here the upstream factor is 2, and central differences
  // confirm the logits gradient doubles with it.
  GradCheck gc;
  const ValueId w = gc.g.param(Shape{{6, 9}}, "w");
  const ValueId x = gc.g.input(Shape{{4, 6}}, DType::F32, "x");
  const ValueId targets = gc.g.input(Shape{{4}}, DType::I32, "targets");
  const ValueId logits = gc.g.matmul(x, w);
  const ValueId ce = gc.g.cross_entropy_mean(logits, targets);
  gc.loss = gc.g.reduce_mean(
      gc.g.mul_scalar(gc.g.reshape(ce, Shape{{1, 1}}), 2.0f));
  Tensor tv = Tensor::zeros(Shape{{4}}, DType::I32);
  for (int i = 0; i < 4; ++i) tv.i32()[i] = (2 * i) % 9;
  gc.feeds = {{w, rnd(Shape{{6, 9}}, 29)},
              {x, rnd(Shape{{4, 6}}, 30)},
              {targets, tv}};
  gc.wrt = {w};
  gc.check();
}

TEST(Autodiff, DropoutBackwardReusesMask) {
  // With p>0, dx must be gy masked exactly like the forward pass.
  Graph g;
  const ValueId x = g.param(Shape{{4096}}, "x");
  const ValueId y = g.dropout(x, 0.5f, /*seed=*/42);
  const ValueId loss = g.reduce_mean(g.reshape(y, Shape{{1, 4096}}));
  const ValueId wrt[] = {x};
  const auto back = build_backward(g, loss, wrt);
  g.mark_output(y);
  g.mark_output(back.grads.at(x));

  Runtime rt;
  RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  const Tensor xv = rnd(Shape{{4096}}, 31, 0.5f, 1.5f);
  const auto result = rt.run(g, {{x, xv}}, opts);
  const Tensor yv = result.outputs.at(y);
  const Tensor dx = result.outputs.at(back.grads.at(x));
  for (std::int64_t i = 0; i < 4096; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (yv.f32()[idx] == 0.0f) {
      EXPECT_EQ(dx.f32()[idx], 0.0f);
    } else {
      EXPECT_NEAR(dx.f32()[idx], 2.0f / 4096.0f, 1e-6f);  // scale 2 = 1/(1-p)
    }
  }
}

TEST(Autodiff, UnusedPathsGetNoNodes) {
  Graph g;
  const ValueId x = g.param(Shape{{4}}, "x");
  const ValueId dead = g.unary(tpc::UnaryKind::kExp, x);  // not on loss path
  (void)dead;
  const ValueId loss = g.reduce_mean(g.reshape(g.mul(x, x), Shape{{1, 4}}));
  const std::size_t before = g.num_nodes();
  const ValueId wrt[] = {x};
  build_backward(g, loss, wrt);
  // Backward of the dead exp would need an UnaryGrad node; ensure none.
  for (std::size_t n = before; n < g.num_nodes(); ++n) {
    EXPECT_EQ(g.node(static_cast<NodeId>(n)).kind == OpKind::kUnaryGrad, false);
  }
}

TEST(Autodiff, RequestedValueWithoutGradientThrows) {
  Graph g;
  const ValueId x = g.param(Shape{{4}}, "x");
  const ValueId unused = g.param(Shape{{4}}, "unused");
  (void)unused;
  const ValueId loss = g.reduce_mean(g.reshape(g.mul(x, x), Shape{{1, 4}}));
  const ValueId wrt[] = {unused};
  EXPECT_THROW(build_backward(g, loss, wrt), sim::InvalidArgument);
}

TEST(Autodiff, LossMustBeScalar) {
  Graph g;
  const ValueId x = g.param(Shape{{4}}, "x");
  const ValueId y = g.mul(x, x);
  const ValueId wrt[] = {x};
  EXPECT_THROW(build_backward(g, y, wrt), sim::InvalidArgument);
}

}  // namespace
}  // namespace gaudi::graph

// HTML report generator tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "core/experiments.hpp"
#include "core/html_report.hpp"

namespace gaudi::core {
namespace {

const sim::ChipConfig& chip() {
  static const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  return cfg;
}

graph::Trace sample_trace() {
  LayerExperiment exp;
  exp.seq_len = 128;
  exp.batch = 4;
  exp.attention.kind = nn::AttentionKind::kSoftmax;
  return run_layer_profile(exp, chip()).trace;
}

TEST(HtmlReport, ContainsAllSections) {
  const std::string html = html_report("my <profile>", sample_trace(), chip());
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("my &lt;profile&gt;"), std::string::npos);  // escaped
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("Timeline"), std::string::npos);
  EXPECT_NE(html.find("Summary"), std::string::npos);
  EXPECT_NE(html.find("Roofline"), std::string::npos);
  EXPECT_NE(html.find("softmax"), std::string::npos);
  // Balanced tags for the structural elements we emit.
  EXPECT_EQ(std::count(html.begin(), html.end(), '<'),
            std::count(html.begin(), html.end(), '>'));
  const auto count_of = [&](const std::string& needle) {
    std::size_t n = 0, pos = 0;
    while ((pos = html.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(count_of("<table>"), count_of("</table>"));
  EXPECT_EQ(count_of("<rect"), count_of("</rect>") + count_of("\"/>"));
}

TEST(HtmlReport, TimelineRectsMatchEngineEvents) {
  const graph::Trace trace = sample_trace();
  const std::string html = html_report("t", trace, chip());
  // Rect tooltips only (the document head contributes one more <title>).
  std::size_t titled_rects = 0, pos = 0;
  while ((pos = html.find("\"><title>", pos)) != std::string::npos) {
    ++titled_rects;
    pos += 9;
  }
  std::size_t drawable = 0;
  for (const auto& e : trace.events()) {
    if (e.engine != graph::Engine::kNone) ++drawable;
  }
  EXPECT_EQ(titled_rects, drawable);
}

TEST(HtmlReport, EmptyTraceDegradesGracefully) {
  const std::string html = html_report("empty", graph::Trace{}, chip());
  EXPECT_NE(html.find("(empty trace)"), std::string::npos);
}

TEST(HtmlReport, WritesFile) {
  const std::string path = "test_report_tmp.html";
  write_html_report(path, "t", sample_trace(), chip());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first;
  std::getline(f, first);
  EXPECT_EQ(first, "<!DOCTYPE html>");
  f.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gaudi::core

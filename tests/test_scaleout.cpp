// Scale-out substrate tests: RoCE link model, ring all-reduce numerics and
// timing laws, and the data-parallel step model.
#include <gtest/gtest.h>

#include <cmath>

#include "scaleout/data_parallel.hpp"
#include "scaleout/pipeline.hpp"
#include "scaleout/tensor_parallel.hpp"
#include "tensor/ops.hpp"

namespace gaudi::scaleout {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::Shape;
using tensor::Tensor;

TEST(Roce, P2pTimeIsAffine) {
  const RoceConfig cfg;
  EXPECT_EQ(p2p_time(cfg, 0), cfg.link_latency);
  const auto t1 = p2p_time(cfg, 1 << 20);
  const auto t2 = p2p_time(cfg, 2 << 20);
  EXPECT_NEAR(static_cast<double>((t2 - t1).ps()),
              static_cast<double>((t1 - cfg.link_latency).ps()), 4.0);
  EXPECT_GT(p2p_effective_bandwidth(cfg, 1ull << 30),
            0.95 * cfg.link_bandwidth_bytes_per_s);
}

class RingAllReduceTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RingAllReduceTest, SumMatchesReferenceForAnyChipCount) {
  const std::uint32_t chips = GetParam();
  const std::int64_t n = 1000;  // not divisible by most chip counts
  std::vector<Tensor> shards;
  Tensor expect = Tensor::zeros(Shape{{n}});
  for (std::uint32_t c = 0; c < chips; ++c) {
    shards.push_back(
        Tensor::uniform(Shape{{n}}, sim::CounterRng{77}.stream(c), -1.0f, 1.0f));
    expect = ops::add(expect, shards.back());
  }
  RoceConfig cfg;
  const AllReduceResult r = ring_all_reduce(cfg, shards, ReduceOp::kSum);
  for (std::uint32_t c = 0; c < chips; ++c) {
    EXPECT_LT(ops::max_abs_diff(shards[c], expect), 1e-4)
        << "chip " << c << " of " << chips;
  }
  if (chips > 1) {
    EXPECT_EQ(r.steps, 2u * (chips - 1));
    EXPECT_GT(r.duration, sim::SimTime::zero());
  }
}

INSTANTIATE_TEST_SUITE_P(ChipCounts, RingAllReduceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 7u, 8u));

TEST(RingAllReduce, MeanDividesByChips) {
  std::vector<Tensor> shards;
  for (int c = 0; c < 4; ++c) {
    shards.push_back(Tensor::full(Shape{{64}}, static_cast<float>(c + 1)));
  }
  RoceConfig cfg;
  ring_all_reduce(cfg, shards, ReduceOp::kMean);
  for (const auto& s : shards) {
    for (float v : s.f32()) EXPECT_NEAR(v, 2.5f, 1e-6f);  // (1+2+3+4)/4
  }
}

TEST(RingAllReduce, SingleShardIsInstantIdentity) {
  std::vector<Tensor> shards{Tensor::full(Shape{{8}}, 3.0f)};
  RoceConfig cfg;
  const auto r = ring_all_reduce(cfg, shards);
  EXPECT_EQ(r.duration, sim::SimTime::zero());
  for (float v : shards[0].f32()) EXPECT_EQ(v, 3.0f);
}

TEST(RingAllReduce, RejectsMismatchedShards) {
  std::vector<Tensor> shards{Tensor::zeros(Shape{{8}}), Tensor::zeros(Shape{{9}})};
  RoceConfig cfg;
  EXPECT_THROW(ring_all_reduce(cfg, shards), sim::InvalidArgument);
}

TEST(RingAllReduce, RejectsEmptyShardVector) {
  std::vector<Tensor> shards;
  RoceConfig cfg;
  EXPECT_THROW(ring_all_reduce(cfg, shards), sim::InvalidArgument);
}

TEST(RingAllReduce, RejectsShapeMismatchEvenAtEqualNumel) {
  // [2,3] vs [3,2] hold the same element count but are different tensors;
  // silently reinterpreting one as the other would corrupt the reduction.
  std::vector<Tensor> shards{Tensor::zeros(Shape{{2, 3}}),
                             Tensor::zeros(Shape{{3, 2}})};
  RoceConfig cfg;
  EXPECT_THROW(ring_all_reduce(cfg, shards), sim::InvalidArgument);
}

TEST(RingAllReduce, TimeEdgeCasesAreFreeNotDivideByZero) {
  const RoceConfig cfg;
  // Zero bytes: nothing to move, whatever the ring size.
  const auto zero = ring_all_reduce_time(cfg, 0, 8);
  EXPECT_EQ(zero.duration, sim::SimTime::zero());
  EXPECT_EQ(zero.bytes_moved_per_chip, 0u);
  // One chip: no exchange at all.
  const auto one = ring_all_reduce_time(cfg, 1ull << 20, 1);
  EXPECT_EQ(one.duration, sim::SimTime::zero());
  EXPECT_EQ(one.steps, 0u);
  // Out-of-box chip counts are rejected, not wrapped.
  EXPECT_THROW((void)ring_all_reduce_time(cfg, 1 << 20, 0), sim::InvalidArgument);
  EXPECT_THROW((void)ring_all_reduce_time(cfg, 1 << 20, cfg.num_chips + 1),
               sim::InvalidArgument);
}

TEST(DataParallel, RejectsDegenerateConfigs) {
  DataParallelConfig cfg;
  const auto step = sim::SimTime::from_ms(100.0);
  cfg.chips = 0;
  EXPECT_THROW((void)data_parallel_step(cfg, step, 1 << 20, 1024),
               sim::InvalidArgument);
  cfg.chips = 8;
  EXPECT_THROW((void)data_parallel_step(cfg, sim::SimTime::zero(), 1 << 20, 1024),
               sim::InvalidArgument);
  cfg.overlappable_fraction = 1.5;
  EXPECT_THROW((void)data_parallel_step(cfg, step, 1 << 20, 1024),
               sim::InvalidArgument);
  cfg.overlappable_fraction = -0.1;
  EXPECT_THROW((void)data_parallel_step(cfg, step, 1 << 20, 1024),
               sim::InvalidArgument);
}

TEST(Pipeline, RejectsDegenerateConfigs) {
  PipelineConfig cfg;
  const auto step = sim::SimTime::from_ms(100.0);
  cfg.stages = 0;
  EXPECT_THROW((void)pipeline_step(cfg, step, 1 << 20, 1024), sim::InvalidArgument);
  cfg.stages = 4;
  cfg.microbatches = 0;
  EXPECT_THROW((void)pipeline_step(cfg, step, 1 << 20, 1024), sim::InvalidArgument);
  cfg.microbatches = 8;
  EXPECT_THROW((void)pipeline_step(cfg, sim::SimTime::zero(), 1 << 20, 1024),
               sim::InvalidArgument);
}

TEST(RingAllReduce, TimeApproachesBandwidthOptimalBound) {
  // For large N, ring all-reduce moves 2(P-1)/P * N bytes per chip.
  const RoceConfig cfg;
  const std::size_t bytes = 1ull << 30;
  const auto r = ring_all_reduce_time(cfg, bytes, 8);
  const double optimal_s =
      2.0 * 7.0 / 8.0 * static_cast<double>(bytes) / cfg.link_bandwidth_bytes_per_s;
  EXPECT_NEAR(r.duration.seconds() / optimal_s, 1.0, 0.01);
  // Latency-bound regime: tiny payloads cost ~2(P-1) latencies.
  const auto tiny = ring_all_reduce_time(cfg, 64, 8);
  EXPECT_GE(tiny.duration, cfg.link_latency * 14);
}

TEST(RingAllReduce, MoreChipsMoreSteps) {
  const RoceConfig cfg;
  const std::size_t bytes = 1 << 20;
  const auto t2 = ring_all_reduce_time(cfg, bytes, 2);
  const auto t8 = ring_all_reduce_time(cfg, bytes, 8);
  EXPECT_LT(t2.steps, t8.steps);
  // Per-chip traffic grows toward 2N as P grows, so time grows too (with
  // fixed chunk latency overheads).
  EXPECT_LT(t2.duration, t8.duration);
}

TEST(DataParallel, EfficiencyDecreasesWithChipsAndImprovesWithOverlap) {
  DataParallelConfig cfg;
  const sim::SimTime step = sim::SimTime::from_ms(300.0);
  const std::size_t grad_bytes = 235ull << 20;  // ~GPT-small gradients
  const std::int64_t tokens = 8 * 2048;

  cfg.chips = 1;
  const auto one = data_parallel_step(cfg, step, grad_bytes, tokens);
  EXPECT_NEAR(one.scaling_efficiency, 1.0, 1e-9);
  EXPECT_EQ(one.exposed_comm, sim::SimTime::zero());

  cfg.chips = 8;
  const auto eight = data_parallel_step(cfg, step, grad_bytes, tokens);
  EXPECT_LT(eight.scaling_efficiency, 1.0);
  EXPECT_GT(eight.scaling_efficiency, 0.5);
  EXPECT_GT(eight.tokens_per_second, one.tokens_per_second);

  cfg.overlap_comm = true;
  const auto overlapped = data_parallel_step(cfg, step, grad_bytes, tokens);
  EXPECT_LE(overlapped.total, eight.total);
  EXPECT_GE(overlapped.scaling_efficiency, eight.scaling_efficiency);
}

TEST(DataParallel, FullyHiddenCommIsPerfectScaling) {
  DataParallelConfig cfg;
  cfg.chips = 4;
  cfg.overlap_comm = true;
  cfg.overlappable_fraction = 1.0;
  // Comm much smaller than compute: fully hidden.
  const auto s = data_parallel_step(cfg, sim::SimTime::from_ms(500.0), 1 << 20,
                                    2048);
  EXPECT_EQ(s.exposed_comm, sim::SimTime::zero());
  EXPECT_NEAR(s.scaling_efficiency, 1.0, 1e-9);
}

TEST(Pipeline, BubbleFractionMatchesGpipeFormula) {
  PipelineConfig cfg;
  cfg.stages = 4;
  cfg.microbatches = 12;
  const auto s = pipeline_step(cfg, sim::SimTime::from_ms(100.0), 1 << 20, 1024);
  EXPECT_NEAR(s.bubble_fraction, 3.0 / 15.0, 1e-9);
  EXPECT_NEAR(s.utilization, 12.0 / 15.0, 1e-9);
  // Total = (M + P - 1) slots of (stage + comm).
  EXPECT_NEAR(s.total.seconds(),
              15.0 * (0.025 + s.boundary_comm.seconds()), 1e-6);
}

TEST(Pipeline, MoreMicrobatchesShrinkTheBubble) {
  PipelineConfig cfg;
  cfg.stages = 8;
  cfg.microbatches = 2;
  const auto few = pipeline_step(cfg, sim::SimTime::from_ms(80.0), 1 << 20, 512);
  cfg.microbatches = 64;
  const auto many = pipeline_step(cfg, sim::SimTime::from_ms(80.0), 1 << 20, 512);
  EXPECT_GT(few.bubble_fraction, many.bubble_fraction);
  EXPECT_GT(many.speedup_vs_single_chip, few.speedup_vs_single_chip);
  // With a deep microbatch stream the speedup approaches the stage count
  // (minus comm overhead).
  EXPECT_GT(many.speedup_vs_single_chip, 5.0);
  EXPECT_LT(many.speedup_vs_single_chip, 8.0);
}

TEST(Pipeline, SingleStageIsJustSequentialExecution) {
  PipelineConfig cfg;
  cfg.stages = 1;
  cfg.microbatches = 4;
  const auto s = pipeline_step(cfg, sim::SimTime::from_ms(60.0), 1 << 20, 256);
  EXPECT_EQ(s.boundary_comm, sim::SimTime::zero());
  EXPECT_NEAR(s.bubble_fraction, 0.0, 1e-12);
  EXPECT_NEAR(s.speedup_vs_single_chip, 1.0, 1e-9);
}

TEST(TensorParallel, ComputeDividesCommAccumulates) {
  TensorParallelConfig cfg;
  cfg.shards = 8;
  const auto s = tensor_parallel_step(cfg, sim::SimTime::from_ms(320.0), 2,
                                      32 << 20, 16384);
  EXPECT_NEAR(s.compute.ms(), 40.0, 1e-6);
  // 2 layers x 4 all-reduces of 32 MB each.
  const auto one = ring_all_reduce_time(cfg.roce, 32 << 20, 8);
  EXPECT_EQ(s.comm.ps(), (one.duration * 8).ps());
  EXPECT_GT(s.speedup_vs_single_chip, 1.0);
  EXPECT_LT(s.speedup_vs_single_chip, 8.0);
  EXPECT_NEAR(s.comm_fraction,
              s.comm.seconds() / (s.comm.seconds() + s.compute.seconds()), 1e-9);
}

TEST(TensorParallel, SingleShardHasNoComm) {
  TensorParallelConfig cfg;
  cfg.shards = 1;
  const auto s = tensor_parallel_step(cfg, sim::SimTime::from_ms(100.0), 4,
                                      1 << 20, 1024);
  EXPECT_EQ(s.comm, sim::SimTime::zero());
  EXPECT_NEAR(s.speedup_vs_single_chip, 1.0, 1e-9);
}

TEST(TensorParallel, DeepModelsPayMoreComm) {
  TensorParallelConfig cfg;
  cfg.shards = 8;
  const auto shallow = tensor_parallel_step(cfg, sim::SimTime::from_ms(300.0), 2,
                                            32 << 20, 16384);
  const auto deep = tensor_parallel_step(cfg, sim::SimTime::from_ms(300.0), 24,
                                         32 << 20, 16384);
  EXPECT_GT(deep.comm_fraction, shallow.comm_fraction);
  EXPECT_LT(deep.speedup_vs_single_chip, shallow.speedup_vs_single_chip);
}

TEST(Pipeline, HeavyActivationsErodeTheSpeedup) {
  PipelineConfig cfg;
  cfg.stages = 8;
  cfg.microbatches = 32;
  const auto light = pipeline_step(cfg, sim::SimTime::from_ms(80.0), 1 << 10, 512);
  const auto heavy =
      pipeline_step(cfg, sim::SimTime::from_ms(80.0), 1ull << 30, 512);
  EXPECT_GT(light.speedup_vs_single_chip, heavy.speedup_vs_single_chip);
}

}  // namespace
}  // namespace gaudi::scaleout

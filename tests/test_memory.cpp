// Memory-system tests: HBM allocator accounting and DMA/HBM timing models.
#include <gtest/gtest.h>

#include "memory/device_memory.hpp"
#include "memory/dma.hpp"
#include "sim/chip_config.hpp"

namespace gaudi::memory {
namespace {

TEST(DeviceAllocator, TracksUsageAndPeak) {
  DeviceAllocator alloc(1000);
  const Allocation a = alloc.allocate(400, "a");
  const Allocation b = alloc.allocate(500, "b");
  EXPECT_EQ(alloc.in_use(), 900u);
  EXPECT_EQ(alloc.peak(), 900u);
  EXPECT_EQ(alloc.live_allocations(), 2u);
  alloc.release(a);
  EXPECT_EQ(alloc.in_use(), 500u);
  EXPECT_EQ(alloc.peak(), 900u);  // peak is sticky
  const Allocation c = alloc.allocate(300, "c");
  EXPECT_EQ(alloc.in_use(), 800u);
  alloc.release(b);
  alloc.release(c);
  EXPECT_EQ(alloc.in_use(), 0u);
}

TEST(DeviceAllocator, ThrowsOnExhaustion) {
  DeviceAllocator alloc(100);
  const Allocation a = alloc.allocate(80);
  EXPECT_THROW(alloc.allocate(21, "too big"), sim::ResourceExhausted);
  alloc.release(a);
  EXPECT_NO_THROW(alloc.allocate(100));
}

TEST(DeviceAllocator, ExhaustionMessageNamesTheTensor) {
  DeviceAllocator alloc(10);
  try {
    alloc.allocate(11, "attention_scores");
    FAIL();
  } catch (const sim::ResourceExhausted& e) {
    EXPECT_NE(std::string(e.what()).find("attention_scores"), std::string::npos);
  }
}

TEST(DeviceAllocator, DetectsDoubleFree) {
  DeviceAllocator alloc(100);
  const Allocation a = alloc.allocate(10);
  alloc.release(a);
  EXPECT_THROW(alloc.release(a), sim::InvalidArgument);
  // Releasing an invalid (default) handle is a harmless no-op.
  EXPECT_NO_THROW(alloc.release(Allocation{}));
}

TEST(DeviceAllocator, FromChipConfigUses32GB) {
  DeviceAllocator alloc(sim::ChipConfig::hls1().memory);
  EXPECT_EQ(alloc.capacity(), 32ull * 1024 * 1024 * 1024);
}

TEST(DmaModel, TimeIsAffineInBytes) {
  const sim::MemoryConfig cfg = sim::ChipConfig::hls1().memory;
  const auto t0 = dma_transfer_time(cfg, 0);
  EXPECT_EQ(t0, cfg.dma_setup);
  const auto t1 = dma_transfer_time(cfg, 1 << 20);
  const auto t2 = dma_transfer_time(cfg, 2 << 20);
  EXPECT_GT(t1, t0);
  // Affine: t2 - t1 == t1 - t0 (streaming part is linear).
  EXPECT_NEAR(static_cast<double>((t2 - t1).ps()),
              static_cast<double>((t1 - t0).ps()), 2.0);
}

TEST(DmaModel, EffectiveBandwidthApproachesPeakForLargeTransfers) {
  const sim::MemoryConfig cfg = sim::ChipConfig::hls1().memory;
  const double small = dma_effective_bandwidth(cfg, 4096);
  const double large = dma_effective_bandwidth(cfg, 1ull << 30);
  EXPECT_LT(small, 0.5 * cfg.dma_bandwidth_bytes_per_s);
  EXPECT_GT(large, 0.95 * cfg.dma_bandwidth_bytes_per_s);
}

TEST(HbmModel, LatencyPlusStreaming) {
  const sim::MemoryConfig cfg = sim::ChipConfig::hls1().memory;
  const auto t = hbm_transfer_time(cfg, static_cast<std::size_t>(1e12));
  // 1 TB at 1 TB/s ~ 1 s dominated by streaming.
  EXPECT_NEAR(t.seconds(), 1.0, 0.01);
  EXPECT_GE(hbm_transfer_time(cfg, 0), cfg.hbm_latency);
}

}  // namespace
}  // namespace gaudi::memory

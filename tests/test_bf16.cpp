// bf16 path tests: cast kernel, bf16 MME throughput/ precision, and
// mixed-precision graphs.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "graph/autodiff.hpp"
#include "sim/numerics.hpp"
#include "graph/runtime.hpp"
#include "mme/mme.hpp"
#include "tensor/ops.hpp"
#include "tpc/cluster.hpp"
#include "tpc/kernels.hpp"

namespace gaudi {
namespace {

namespace ops = gaudi::tensor::ops;
using graph::ValueId;
using tensor::DType;
using tensor::Shape;
using tensor::Tensor;

tpc::TpcCluster cluster() { return tpc::TpcCluster(sim::ChipConfig::hls1().tpc); }

TEST(CastKernel, RoundTripWithinBf16Precision) {
  const Tensor x = Tensor::uniform(Shape{{1000}}, sim::CounterRng{91}, -8.0f, 8.0f);
  Tensor b = Tensor::zeros(Shape{{1000}}, DType::BF16);
  Tensor back = Tensor::zeros(Shape{{1000}});
  const tpc::TpcCluster c = cluster();
  c.run(tpc::CastKernel(x, b), tpc::ExecMode::kFunctional);
  c.run(tpc::CastKernel(b, back), tpc::ExecMode::kFunctional);
  for (std::int64_t i = 0; i < 1000; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_LE(std::abs(back.f32()[idx] - x.f32()[idx]),
              std::abs(x.f32()[idx]) / 256.0f + 1e-30f);
    EXPECT_EQ(back.f32()[idx], tensor::round_bf16(x.f32()[idx]));
  }
}

TEST(CastKernel, Bf16SideMovesHalfTheTraffic) {
  // Casting down costs less store traffic than an f32 copy of equal size.
  const std::int64_t n = 1 << 18;
  const Tensor xf = Tensor::phantom(Shape{{n}});
  const Tensor xb = Tensor::phantom(Shape{{n}}, DType::BF16);
  const tpc::TpcCluster c = cluster();
  const auto down = c.run(tpc::CastKernel(xf, xb), tpc::ExecMode::kTiming);
  const auto copy_like = c.run(
      tpc::ScalarEwKernel(tpc::ScalarKind::kAddS, xf, 0.0f, Tensor::phantom(Shape{{n}})),
      tpc::ExecMode::kTiming);
  EXPECT_LT(down.slot_totals.store, copy_like.slot_totals.store);
}

TEST(CastKernel, RejectsSameDtype) {
  const Tensor a = Tensor::zeros(Shape{{8}});
  const Tensor b = Tensor::zeros(Shape{{8}});
  EXPECT_THROW(tpc::CastKernel(a, b), sim::InvalidArgument);
}

TEST(MmeBf16, DoublesThroughputAtLargeSizes) {
  const mme::MmeEngine engine(sim::ChipConfig::hls1().mme);
  mme::GemmShape f32{1, 4096, 4096, 4096, DType::F32};
  mme::GemmShape bf16 = f32;
  bf16.dtype = DType::BF16;
  const double r32 = engine.cost(f32).tflops();
  const double r16 = engine.cost(bf16).tflops();
  EXPECT_NEAR(r16 / r32, 2.0, 0.05);
  EXPECT_NEAR(r16, 29.2, 1.0);  // ~2x the 14.6 TFLOPS f32 peak
}

TEST(MmeBf16, FunctionalPrecisionBounded) {
  const sim::CounterRng rng(92);
  const Tensor a32 = Tensor::uniform(Shape{{24, 32}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor b32 = Tensor::uniform(Shape{{32, 16}}, rng.stream(2), -1.0f, 1.0f);
  const mme::MmeEngine engine(sim::ChipConfig::hls1().mme);
  const Tensor exact = engine.execute(a32, b32);
  const Tensor approx =
      engine.execute(a32.to(DType::BF16), b32.to(DType::BF16));
  EXPECT_EQ(approx.dtype(), DType::BF16);
  // Inputs rounded to 8-bit mantissas over k=32 accumulation: the absolute
  // error stays far below the O(1) result magnitudes.  (Relative error can
  // spike where the dot products cancel toward zero — expected for bf16.)
  EXPECT_LT(ops::max_abs_diff(exact, approx.to(DType::F32)), 0.1);
  // But it is genuinely lossy (bf16 differs from f32).
  EXPECT_GT(ops::max_abs_diff(exact, approx.to(DType::F32)), 0.0);
}

TEST(GraphBf16, MixedPrecisionMatmulChain) {
  // x(f32) -> cast bf16 -> matmul(bf16 weights) -> cast f32 -> softmax.
  graph::Graph g;
  const ValueId x = g.input(Shape{{8, 16}}, DType::F32, "x");
  const ValueId w = g.input(Shape{{16, 16}}, DType::BF16, "w");
  const ValueId xb = g.cast(x, DType::BF16);
  const ValueId h = g.matmul(xb, w);
  EXPECT_EQ(g.value(h).dtype, DType::BF16);
  const ValueId y = g.softmax(g.cast(h, DType::F32));
  g.mark_output(y);

  const sim::CounterRng rng(93);
  const Tensor xv = Tensor::uniform(Shape{{8, 16}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor wv =
      Tensor::uniform(Shape{{16, 16}}, rng.stream(2), -1.0f, 1.0f).to(DType::BF16);

  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  const auto result = rt.run(g, {{x, xv}, {w, wv}}, opts);

  const Tensor expect = ops::softmax_lastdim(
      ops::matmul(xv.to(DType::BF16).to(DType::F32), wv.to(DType::F32))
          .to(DType::BF16)
          .to(DType::F32));
  EXPECT_LT(ops::max_abs_diff(result.outputs.at(y), expect), 1e-5);
}

TEST(GraphBf16, Bf16MatmulIsFasterThanF32) {
  auto makespan = [](DType dtype) {
    graph::Graph g;
    const ValueId a = g.input(Shape{{2048, 2048}}, dtype, "a");
    const ValueId b = g.input(Shape{{2048, 2048}}, dtype, "b");
    g.mark_output(g.matmul(a, b));
    graph::Runtime rt;
    graph::RunOptions opts;
    opts.mode = tpc::ExecMode::kTiming;
    return rt.run(g, {}, opts).makespan;
  };
  EXPECT_LT(makespan(DType::BF16), makespan(DType::F32));
}

TEST(GraphBf16, CastBackwardRestoresDtype) {
  graph::Graph g;
  const ValueId x = g.param(Shape{{4, 4}}, "x");  // f32 param
  const ValueId w = g.input(Shape{{4, 4}}, DType::BF16, "w");
  const ValueId h = g.matmul(g.cast(x, DType::BF16), w);
  const ValueId hf = g.cast(h, DType::F32);
  const ValueId loss = g.reduce_mean(g.reshape(hf, Shape{{1, 16}}));
  const ValueId wrt[] = {x};
  const auto back = graph::build_backward(g, loss, wrt);
  EXPECT_EQ(g.value(back.grads.at(x)).dtype, DType::F32);
  g.mark_output(back.grads.at(x));

  const sim::CounterRng rng(94);
  const Tensor xv = Tensor::uniform(Shape{{4, 4}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor wv =
      Tensor::uniform(Shape{{4, 4}}, rng.stream(2), -1.0f, 1.0f).to(DType::BF16);
  graph::Runtime rt;
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kFunctional;
  const auto result = rt.run(g, {{x, xv}, {w, wv}}, opts);
  // dLoss/dx ~ (1/16) * row sums of W (bf16 rounding adds ~1e-3 noise).
  const Tensor grad = result.outputs.at(back.grads.at(x));
  const Tensor wv32 = wv.to(DType::F32);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      float expect = 0.0f;
      for (int c = 0; c < 4; ++c) expect += wv32.f32()[j * 4 + c] / 16.0f;
      EXPECT_NEAR(grad.f32()[i * 4 + j], expect, 1e-2f);
    }
  }
}

// ---------------------------------------------------------------------------
// bf16 encoding boundaries (round-to-nearest-even at the edges of the format)
// ---------------------------------------------------------------------------

TEST(Bf16Boundary, FiniteMaxRoundsToInfinityAtHalfUlp) {
  // 0x7F7F8000 is exactly halfway between bf16's finite max (0x7F7F) and
  // infinity (0x7F80); RNE resolves the tie toward the even encoding, which
  // is infinity.  Everything below stays finite.
  const float just_over = std::bit_cast<float>(0x7F7F8000u);
  EXPECT_TRUE(std::isfinite(just_over));
  EXPECT_EQ(tensor::f32_to_bf16(just_over), 0x7F80);
  EXPECT_TRUE(std::isinf(tensor::round_bf16(just_over)));
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0x7F7F7FFFu)), 0x7F7F);
  // Sign carries through on the negative side.
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0xFF7F8000u)), 0xFF80);
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0xFF7F7FFFu)), 0xFF7F);
}

TEST(Bf16Boundary, SweepCountsCastOverflowAtTheBoundary) {
  // The guard sweep must flag exactly the f32 values whose bf16 cast rounds
  // to infinity — the boundary case included, the value one ulp under not.
  const float vals[] = {std::bit_cast<float>(0x7F7F8000u),
                        std::bit_cast<float>(0x7F7F7FFFu),
                        std::bit_cast<float>(0xFF7F8000u), 1.0f};
  const sim::NumericsStats s = sim::sweep_f32(vals);
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.bf16_overflow_count, 2u);
  EXPECT_EQ(s.inf_count, 0u);
  EXPECT_EQ(s.nan_count, 0u);
  EXPECT_FALSE(s.anomalous());  // a would-overflow cast is a warning, not NaN
}

TEST(Bf16Boundary, NanPayloadsCanonicalize) {
  // Every f32 NaN — quiet, signaling, negative — collapses to the canonical
  // bf16 quiet NaN; payloads are not preserved (truncation could otherwise
  // quiet a signaling payload into an infinity encoding).
  EXPECT_EQ(tensor::f32_to_bf16(std::numeric_limits<float>::quiet_NaN()), 0x7FC0);
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0x7FA00000u)), 0x7FC0);
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0xFFC00001u)), 0x7FC0);
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0x7F800001u)), 0x7FC0);
  EXPECT_TRUE(std::isnan(tensor::bf16_to_f32(0x7FC0)));
}

TEST(Bf16Boundary, DenormalsRoundTripExactly) {
  // bf16 denormals (exp 0, mantissa != 0) widen to f32 denormals and narrow
  // back without loss; the sweep classifies them as denormal, not zero.
  const std::uint16_t encodings[] = {0x0001, 0x007F, 0x8001, 0x803F};
  for (const std::uint16_t b : encodings) {
    const float f = tensor::bf16_to_f32(b);
    EXPECT_NE(f, 0.0f);
    EXPECT_LT(std::abs(f), std::numeric_limits<float>::min());
    EXPECT_EQ(tensor::f32_to_bf16(f), b);
  }
  const sim::NumericsStats s = sim::sweep_bf16(encodings);
  EXPECT_EQ(s.denormal_count, 4u);
  EXPECT_EQ(s.nan_count, 0u);
}

TEST(Bf16Boundary, TiesRoundToEven) {
  // Exactly-halfway mantissas resolve to the even bf16 encoding; anything
  // past the tie rounds up.
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0x3F808000u)), 0x3F80);
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0x3F818000u)), 0x3F82);
  EXPECT_EQ(tensor::f32_to_bf16(std::bit_cast<float>(0x3F808001u)), 0x3F81);
}

}  // namespace
}  // namespace gaudi

// Timing-only fast path: fingerprinting, memoized replay, and functional
// equivalence.
//
// The contract under test is the tentpole invariant of the fast path: a
// timing-only run must be *observationally identical* to the full pipeline
// — byte-identical trace and engine summaries — while doing none of the
// kernel math, buffer traffic, or guard sweeps, and replaying from the
// process-wide memo on every run after the first.  The fuzz section checks
// that over 50 seeded random DAGs against full functional execution.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "graph/fingerprint.hpp"
#include "graph/random_graph.hpp"
#include "graph/runtime.hpp"
#include "graph/timing_memo.hpp"
#include "sim/error.hpp"
#include "sim/fault.hpp"
#include "sim/thread_pool.hpp"
#include "tensor/shape.hpp"

namespace gaudi::graph {
namespace {

sim::ChipConfig chip() { return sim::ChipConfig::hls1(); }

Graph small_graph(std::int64_t n = 64) {
  Graph g;
  const ValueId a = g.input(tensor::Shape{{n, n}}, tensor::DType::F32, "a");
  const ValueId b = g.param(tensor::Shape{{n, n}}, "b");
  g.mark_output(g.relu(g.matmul(a, b)));
  return g;
}

/// Everything the fast path promises to reproduce byte-for-byte.
std::string observable(const ProfileResult& r) {
  return r.trace.to_chrome_json() + "\nmakespan_ps=" +
         std::to_string(r.makespan.ps()) + "\n" +
         core::to_report(core::summarize(r.trace), "observable");
}

// --- Fingerprints ----------------------------------------------------------

TEST(Fingerprint, StableAcrossCompilesAndSensitiveToStructure) {
  Runtime rt(chip());
  const Graph g = small_graph();
  const CompiledGraph c1 = rt.compile(g);
  const CompiledGraph c2 = rt.compile(g);
  EXPECT_NE(c1.fingerprint, 0u);
  EXPECT_EQ(c1.fingerprint, c2.fingerprint);
  EXPECT_EQ(c1.fingerprint, c1.stats.fingerprint);

  const CompiledGraph other = rt.compile(small_graph(128));
  EXPECT_NE(other.fingerprint, c1.fingerprint);

  // Compile options are part of the key: a fused artifact schedules
  // differently, so it must not collide with the unfused one.
  CompileOptions copts;
  copts.fuse_elementwise = true;
  EXPECT_NE(rt.compile(g, copts).fingerprint, c1.fingerprint);
}

TEST(Fingerprint, ChipConfigChangesTheKey) {
  sim::ChipConfig a = chip();
  sim::ChipConfig b = chip();
  b.mme.clock_hz = a.mme.clock_hz * 2.0;
  EXPECT_NE(chip_fingerprint(a), chip_fingerprint(b));
  EXPECT_EQ(chip_fingerprint(a), chip_fingerprint(chip()));
}

// --- Memoized replay -------------------------------------------------------

TEST(TimingOnly, SecondRunIsAMemoHitWithIdenticalBytes) {
  TimingMemo::global().clear();
  Runtime rt(chip());
  const CompiledGraph cg = rt.compile(small_graph());
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.timing_only = true;

  const ProfileResult first = rt.run(cg, {}, opts);
  EXPECT_TRUE(first.timing_only);
  EXPECT_FALSE(first.memo_hit);

  const ProfileResult second = rt.run(cg, {}, opts);
  EXPECT_TRUE(second.timing_only);
  EXPECT_TRUE(second.memo_hit);
  EXPECT_GT(second.memo_hits, first.memo_hits);
  EXPECT_EQ(observable(first), observable(second));

  // A separately compiled artifact of the same graph replays the same memo
  // entry — the fingerprint, not the object identity, is the key.
  const CompiledGraph cg2 = rt.compile(small_graph());
  const ProfileResult third = rt.run(cg2, {}, opts);
  EXPECT_TRUE(third.memo_hit);
  EXPECT_EQ(observable(first), observable(third));
}

TEST(TimingOnly, PolicyKeysSeparateEntries) {
  TimingMemo::global().clear();
  Runtime rt(chip());
  const CompiledGraph cg = rt.compile(small_graph());
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.timing_only = true;
  opts.policy = SchedulePolicy::kBarrier;
  const ProfileResult barrier = rt.run(cg, {}, opts);
  opts.policy = SchedulePolicy::kOverlap;
  const ProfileResult overlap = rt.run(cg, {}, opts);
  // Overlap never schedules later than barrier; distinct entries mean the
  // second run was a miss, not a replay of the barrier trace.
  EXPECT_FALSE(overlap.memo_hit);
  EXPECT_LE(overlap.makespan, barrier.makespan);
}

TEST(TimingOnly, FaultInjectionBypassesTheMemo) {
  TimingMemo::global().clear();
  Runtime rt(chip());
  const CompiledGraph cg = rt.compile(small_graph());
  const sim::FaultInjector faults{0xFA517, sim::FaultProfile::stress()};
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.timing_only = true;
  opts.faults = &faults;
  const ProfileResult r = rt.run(cg, {}, opts);
  // The fault schedule is epoch-dependent, so the run takes the full path:
  // nothing is deposited and nothing replayed.
  EXPECT_FALSE(r.timing_only);
  EXPECT_FALSE(r.memo_hit);
  EXPECT_EQ(TimingMemo::global().size(), 0u);
}

TEST(TimingOnly, EnvOnlyAppliesToTimingModeRuns) {
  TimingMemo::global().clear();
  ASSERT_EQ(setenv("GAUDI_TIMING_ONLY", "1", 1), 0);
  Runtime rt(chip());
  const Graph g = small_graph();
  const CompiledGraph cg = rt.compile(g);

  // A functional run keeps producing real outputs: the env var must never
  // silently phantomize them.
  RunOptions functional;
  functional.mode = tpc::ExecMode::kFunctional;
  functional.guard = sim::NumericsPolicy::kOff;
  const ProfileResult f = rt.run(cg, random_feeds(g, 7), functional);
  EXPECT_FALSE(f.timing_only);
  EXPECT_FALSE(f.outputs.empty());

  // A timing run opts in via the environment alone.
  RunOptions timing;
  timing.mode = tpc::ExecMode::kTiming;
  const ProfileResult t1 = rt.run(cg, {}, timing);
  const ProfileResult t2 = rt.run(cg, {}, timing);
  EXPECT_TRUE(t1.timing_only);
  EXPECT_TRUE(t2.memo_hit);
  ASSERT_EQ(unsetenv("GAUDI_TIMING_ONLY"), 0);
}

// --- Fuzz: equivalence with full functional execution ----------------------

TEST(TimingOnlyFuzz, MatchesFunctionalTraceAndSummariesOver50Seeds) {
  Runtime rt(chip());
  const sim::FaultInjector no_faults{};  // neutralizes GAUDI_FAULTS lanes
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const RandomDag dag = random_dag(seed);
    const CompiledGraph cg = rt.compile(dag.graph);

    RunOptions functional;
    functional.mode = tpc::ExecMode::kFunctional;
    // Guard sweeps add kGuard spans to functional traces, which timing-only
    // runs skip by contract; pin the guard off so the comparison is
    // mode-to-mode even under a GAUDI_GUARD CI lane.
    functional.guard = sim::NumericsPolicy::kOff;
    functional.faults = &no_faults;
    const ProfileResult full =
        rt.run(cg, random_feeds(dag.graph, seed), functional);

    RunOptions fast;
    fast.mode = tpc::ExecMode::kTiming;
    fast.timing_only = true;
    fast.faults = &no_faults;
    const ProfileResult t1 = rt.run(cg, {}, fast);
    const ProfileResult t2 = rt.run(cg, {}, fast);

    ASSERT_EQ(observable(full), observable(t1)) << "seed " << seed;
    ASSERT_EQ(observable(t1), observable(t2)) << "seed " << seed;
    ASSERT_TRUE(t1.timing_only) << "seed " << seed;
    ASSERT_TRUE(t2.memo_hit) << "seed " << seed;
    ASSERT_EQ(t1.node_execs.size(), full.node_execs.size()) << "seed " << seed;
  }
}

// --- Parallel replicas -----------------------------------------------------

TEST(TimingOnly, ParallelReplicasMatchSerialMerge) {
  constexpr std::uint64_t kBase = 0x5EED00;
  constexpr std::size_t kReplicas = 12;

  const auto run_one = [](std::uint64_t seed) {
    Runtime rt(chip());
    const RandomDag dag = random_dag(seed);
    RunOptions fast;
    fast.mode = tpc::ExecMode::kTiming;
    fast.timing_only = true;
    return observable(rt.run(dag.graph, {}, fast));
  };

  TimingMemo::global().clear();
  std::vector<std::string> serial(kReplicas);
  for (std::size_t i = 0; i < kReplicas; ++i) {
    serial[i] = run_one(kBase + i);
  }

  // Fresh memo: the parallel pass races to populate it, yet every replica's
  // entry is a pure function of its seed, so the in-order merge is
  // byte-identical to the serial pass.
  TimingMemo::global().clear();
  std::vector<std::string> parallel(kReplicas);
  sim::ThreadPool pool;
  pool.parallel_for(kReplicas,
                    [&](std::size_t i) { parallel[i] = run_one(kBase + i); });
  for (std::size_t i = 0; i < kReplicas; ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "replica " << i;
  }
}

// --- Cross-process persistence ---------------------------------------------
//
// The makespan entries are pure functions of their fingerprint keys, so a
// sweep can deposit them on disk (GAUDI_MEMO_FILE) and the next process
// warm-starts.  The file is checksummed and damage maps onto the checkpoint
// error hierarchy, same discipline as scan_snapshots.

std::string memo_path(const char* name) {
  return ::testing::TempDir() + name;
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream os(path, std::ios::trunc);
  os << text;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(MemoPersistence, SaveLoadRoundTripsAndMergesWithExistingKeysWinning) {
  const std::string path = memo_path("memo_roundtrip.txt");
  TimingMemo& memo = TimingMemo::global();
  memo.clear();
  memo.insert_time("decode-step:aaaa", sim::SimTime::from_ps(123));
  memo.insert_time("prefill-chunk:bbbb", sim::SimTime::from_ps(456));
  EXPECT_EQ(memo.save_times(path), 2u);

  memo.clear();
  memo.insert_time("decode-step:aaaa", sim::SimTime::from_ps(999));  // winner
  EXPECT_EQ(memo.load_times(path), 2u);
  sim::SimTime t{};
  ASSERT_TRUE(memo.find_time("decode-step:aaaa", &t));
  EXPECT_EQ(t.ps(), 999);  // resident entry beats the loaded one
  ASSERT_TRUE(memo.find_time("prefill-chunk:bbbb", &t));
  EXPECT_EQ(t.ps(), 456);
  memo.clear();
  std::remove(path.c_str());
}

TEST(MemoPersistence, RejectsDamageWithTypedCheckpointErrors) {
  const std::string path = memo_path("memo_damage.txt");
  TimingMemo& memo = TimingMemo::global();
  memo.clear();
  memo.insert_time("decode-step:cccc", sim::SimTime::from_ps(42));
  ASSERT_EQ(memo.save_times(path), 1u);
  const std::string good = read_file(path);

  // Foreign magic: a file from some other tool (or a future format).
  write_file(path, "gaudi-timing-memo v9\ncount 0\nchecksum 0\n");
  EXPECT_THROW((void)memo.load_times(path), sim::CheckpointVersionSkew);

  // Truncation: the checksum trailer (written last) is missing.
  write_file(path, good.substr(0, good.rfind("checksum ")));
  EXPECT_THROW((void)memo.load_times(path), sim::CheckpointTruncated);

  // Bit rot: flip one digit inside an entry, trailer now disagrees.
  std::string rotten = good;
  rotten.replace(rotten.find(" 42"), 3, " 43");
  write_file(path, rotten);
  EXPECT_THROW((void)memo.load_times(path), sim::CheckpointChecksumMismatch);

  // The pristine bytes still load after all that rejection.
  write_file(path, good);
  memo.clear();
  EXPECT_EQ(memo.load_times(path), 1u);
  memo.clear();
  std::remove(path.c_str());
}

TEST(MemoPersistence, EnvHelperReflectsGaudiMemoFile) {
  ASSERT_EQ(::unsetenv("GAUDI_MEMO_FILE"), 0);
  EXPECT_TRUE(memo_file_from_env().empty());
  EXPECT_EQ(save_memo_to_env_file(), 0u);  // unset: a quiet no-op
  const std::string path = memo_path("memo_env.txt");
  ASSERT_EQ(::setenv("GAUDI_MEMO_FILE", path.c_str(), 1), 0);
  EXPECT_EQ(memo_file_from_env(), path);
  TimingMemo& memo = TimingMemo::global();
  memo.clear();
  memo.insert_time("decode-step:dddd", sim::SimTime::from_ps(7));
  EXPECT_EQ(save_memo_to_env_file(), 1u);
  memo.clear();
  EXPECT_EQ(memo.load_times(path), 1u);
  ASSERT_EQ(::unsetenv("GAUDI_MEMO_FILE"), 0);
  memo.clear();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gaudi::graph

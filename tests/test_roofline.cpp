// Roofline analysis and graph-printer tests.
#include <gtest/gtest.h>

#include "core/experiments.hpp"
#include "core/roofline.hpp"
#include "graph/printer.hpp"
#include "graph/runtime.hpp"

namespace gaudi::core {
namespace {

using graph::Engine;
using tensor::DType;
using tensor::Shape;

const sim::ChipConfig& chip() {
  static const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  return cfg;
}

TEST(Roofline, MachineBalanceOrdersEngines) {
  // The MME needs ~7x more arithmetic intensity than the TPC to stay busy.
  const double mme = machine_balance(chip(), Engine::kMme);
  const double tpc = machine_balance(chip(), Engine::kTpc);
  EXPECT_NEAR(mme, 14.6, 0.3);
  EXPECT_NEAR(tpc, 2.2, 0.2);
  EXPECT_THROW(machine_balance(chip(), Engine::kDma), sim::InvalidArgument);
}

TEST(Roofline, ClassifiesSoftmaxMemoryBoundAndGemmComputeBound) {
  LayerExperiment exp;
  exp.attention.kind = nn::AttentionKind::kSoftmax;
  const auto profile = run_layer_profile(exp, chip());
  const auto points = roofline(profile.trace, chip());
  ASSERT_FALSE(points.empty());

  bool saw_softmax = false, saw_gemm = false;
  for (const auto& p : points) {
    if (p.name.find("softmax") != std::string::npos) {
      saw_softmax = true;
      EXPECT_TRUE(p.memory_bound) << p.name;
      EXPECT_LT(p.intensity, 2.0);
      EXPECT_EQ(p.engine, Engine::kTpc);
    }
    if (p.name.find("qk_t") != std::string::npos) {
      saw_gemm = true;
      EXPECT_FALSE(p.memory_bound) << p.name;
      EXPECT_GT(p.intensity, machine_balance(chip(), Engine::kMme));
      // GEMMs run near the compute roof.
      EXPECT_GT(p.roof_fraction, 0.9);
    }
  }
  EXPECT_TRUE(saw_softmax);
  EXPECT_TRUE(saw_gemm);

  // Sorted heaviest-first; at this config softmax tops the list.
  EXPECT_NE(points[0].name.find("softmax"), std::string::npos);
  const std::string table = format_roofline(points, 5);
  EXPECT_NE(table.find("memory"), std::string::npos);
  EXPECT_NE(table.find("compute"), std::string::npos);
}

TEST(Roofline, AggregatesRepeatedOps) {
  // Two layers produce two softmax ops with distinct names but the qk_t of
  // one layer aggregates its fwd occurrences into one point.
  const auto profile = run_llm_profile(nn::LmConfig::gpt2_paper(),
                                       graph::SchedulePolicy::kBarrier, chip());
  const auto points = roofline(profile.trace, chip());
  int lm_head_points = 0;
  for (const auto& p : points) {
    if (p.name == "gpt2.lm_head.matmul") ++lm_head_points;
  }
  EXPECT_EQ(lm_head_points, 1);
}

TEST(Printer, TextDumpListsNodesAndEngines) {
  graph::Graph g;
  const auto x = g.input(Shape{{4, 8}}, DType::F32, "x");
  const auto w = g.param(Shape{{8, 8}}, "weights");
  g.mark_output(g.softmax(g.matmul(x, w)));
  const std::string text = graph::to_text(g);
  EXPECT_NE(text.find("[MME] matmul"), std::string::npos);
  EXPECT_NE(text.find("[TPC] softmax"), std::string::npos);
  EXPECT_NE(text.find("[4, 8]"), std::string::npos);
}

TEST(Printer, DotExportIsWellFormed) {
  graph::Graph g;
  const auto x = g.input(Shape{{4, 8}}, DType::F32, "x");
  const auto w = g.param(Shape{{8, 8}}, "w\"eird");  // needs escaping
  g.mark_output(g.relu(g.matmul(x, w)));
  const std::string dot = graph::to_dot(g);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("#4e79a7"), std::string::npos);  // MME color
  EXPECT_NE(dot.find("#f28e2b"), std::string::npos);  // TPC color
  EXPECT_NE(dot.find("\\\""), std::string::npos);     // escaped quote
  EXPECT_EQ(dot.back(), '\n');
}

TEST(Printer, TraceEventsCarryBytesForCompute) {
  graph::Graph g;
  const auto x = g.input(Shape{{64, 64}}, DType::F32, "x");
  g.mark_output(g.relu(x));
  graph::Runtime rt(chip());
  graph::RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  const auto result = rt.run(g, {}, opts);
  for (const auto& e : result.trace.events()) {
    if (e.engine == Engine::kTpc) {
      EXPECT_EQ(e.bytes, 2u * 64 * 64 * 4);  // in + out
    }
  }
}

}  // namespace
}  // namespace gaudi::core

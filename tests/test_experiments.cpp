// Integration tests: the paper's tables and figures as executable
// assertions.  Each test pins the qualitative claim the corresponding bench
// binary prints (see EXPERIMENTS.md for the measured-vs-paper record).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/advisor.hpp"
#include "core/baseline.hpp"
#include "core/experiments.hpp"
#include "core/table.hpp"

namespace gaudi::core {
namespace {

const sim::ChipConfig& chip() {
  static const sim::ChipConfig cfg = sim::ChipConfig::hls1();
  return cfg;
}

// ---------------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------------

TEST(Table1, MappingMatchesPaperExactly) {
  const auto rows = run_op_mapping_probe();
  ASSERT_EQ(rows.size(), 9u);
  for (const auto& r : rows) {
    if (r.operation == "torch.matmul") {
      EXPECT_EQ(r.engine, graph::Engine::kMme) << r.operation;
    } else {
      EXPECT_EQ(r.engine, graph::Engine::kTpc) << r.operation;
    }
  }
  const std::string table = format_op_mapping(rows);
  EXPECT_NE(table.find("torch.matmul"), std::string::npos);
  EXPECT_NE(table.find("MME"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

TEST(Table2, TflopsAndSpeedupShapesMatchPaper) {
  const auto rows = run_mme_vs_tpc(chip(), {128, 256, 512, 1024, 2048});
  ASSERT_EQ(rows.size(), 5u);

  // MME ramps to ~14.6 TFLOPS, saturating by size 512 (paper: 2.35 -> 14.59).
  EXPECT_NEAR(rows[0].f_mme_tflops, 2.35, 0.5);
  EXPECT_GT(rows[2].f_mme_tflops, 12.0);
  EXPECT_NEAR(rows[4].f_mme_tflops, 14.59, 0.3);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GE(rows[i].f_mme_tflops, rows[i - 1].f_mme_tflops);
  }

  // TPC is flat around ~2 TFLOPS (paper: 1.86 -> 2.19).
  EXPECT_NEAR(rows[0].f_tpc_tflops, 1.86, 0.3);
  EXPECT_NEAR(rows[4].f_tpc_tflops, 2.19, 0.15);

  // Speedup grows from ~1.3 and saturates near ~6.6 (paper: 1.3 -> 6.6).
  EXPECT_GT(rows[0].speedup, 1.0);
  EXPECT_LT(rows[0].speedup, 2.0);
  EXPECT_NEAR(rows[4].speedup, 6.6, 0.5);
  // The paper's headline: TPC compute is up to ~7x slower than MME.
  for (const auto& r : rows) EXPECT_LT(r.speedup, 7.5);
}

TEST(Table2, TimesConsistentWithTflops) {
  const auto rows = run_mme_vs_tpc(chip(), {256});
  const double flops = 2.0 * 64 * 256.0 * 256.0 * 256.0;
  EXPECT_NEAR(rows[0].f_mme_tflops,
              flops / (rows[0].t_mme_ms * 1e-3) * 1e-12, 0.01);
  EXPECT_NEAR(rows[0].speedup, rows[0].t_tpc_ms / rows[0].t_mme_ms, 1e-6);
}

// ---------------------------------------------------------------------------
// Figures 4-6: attention mechanisms
// ---------------------------------------------------------------------------

struct LayerProfiles {
  LayerProfile softmax, linear, performer;
};

const LayerProfiles& profiles() {
  static const LayerProfiles p = [] {
    LayerProfiles r;
    LayerExperiment e;
    e.attention.kind = nn::AttentionKind::kSoftmax;
    r.softmax = run_layer_profile(e, chip());
    e.attention.kind = nn::AttentionKind::kLinear;
    r.linear = run_layer_profile(e, chip());
    e.attention.kind = nn::AttentionKind::kPerformer;
    r.performer = run_layer_profile(e, chip());
    return r;
  }();
  return p;
}

TEST(Fig4, SoftmaxDominatesTpcTime) {
  // Paper: "the running time of softmax exceeds 80% of the total running
  // time" of the TPC region.
  EXPECT_GT(profiles().softmax.summary.softmax_share_of_tpc, 0.80);
}

TEST(Fig4, MmeHasManyBlankAreas) {
  const auto& s = profiles().softmax.summary;
  EXPECT_GT(s.mme_idle_fraction, 0.35);
  EXPECT_GE(s.mme_gap_count, 3u);
  EXPECT_GT(s.mme_longest_gap.ms(), 10.0);
}

TEST(Fig4, FitsInHbmAtPaperScale) {
  // batch 128 x seq 2048 softmax attention just fits the 32 GB device.
  EXPECT_LE(profiles().softmax.hbm_peak_bytes, 32ull << 30);
  EXPECT_GT(profiles().softmax.hbm_peak_bytes, 8ull << 30);
}

TEST(Fig5, LinearAttentionIsSeveralTimesFaster) {
  // Paper: ~6x; simulator reproduces ~4-6x (see EXPERIMENTS.md).
  const double speedup = profiles().softmax.summary.makespan.seconds() /
                         profiles().linear.summary.makespan.seconds();
  EXPECT_GT(speedup, 3.5);
  EXPECT_LT(speedup, 8.0);
  // Paper reports ~30 ms for the linear Transformer layer.
  EXPECT_NEAR(profiles().linear.summary.makespan.ms(), 30.0, 12.0);
}

TEST(Fig5, MmeWellUtilizedComparedToSoftmax) {
  // Paper: "there are not many blank areas in the MME operating area".
  EXPECT_LT(profiles().linear.summary.mme_idle_fraction,
            profiles().softmax.summary.mme_idle_fraction - 0.10);
  EXPECT_EQ(profiles().linear.summary.softmax_share_of_tpc, 0.0);
}

TEST(Fig6, PerformerBetweenLinearAndSoftmax) {
  // Paper: softmax ~2x slower than Performer; Performer slower than linear
  // (80 ms vs 30 ms).
  const double vs_softmax = profiles().softmax.summary.makespan.seconds() /
                            profiles().performer.summary.makespan.seconds();
  EXPECT_GT(vs_softmax, 1.5);
  EXPECT_LT(vs_softmax, 3.5);
  EXPECT_GT(profiles().performer.summary.makespan.seconds(),
            profiles().linear.summary.makespan.seconds());
  EXPECT_NEAR(profiles().performer.summary.makespan.ms(), 80.0, 20.0);
}

TEST(Fig6, TpcBusyWithExponentials) {
  // Paper: "the TPC is busy with exponential operations" during the blank
  // area.
  EXPECT_GT(profiles().performer.summary.exp_share_of_tpc, 0.4);
}

TEST(Fig6, OverlapSchedulerRecoversSomeBlankArea) {
  LayerExperiment e;
  e.attention.kind = nn::AttentionKind::kPerformer;
  e.policy = graph::SchedulePolicy::kOverlap;
  const auto overlapped = run_layer_profile(e, chip());
  EXPECT_LT(overlapped.summary.makespan,
            profiles().performer.summary.makespan);
}

// ---------------------------------------------------------------------------
// Figure 7: feature-map activations
// ---------------------------------------------------------------------------

TEST(Fig7, ActivationOrderingMatchesPaper) {
  auto run_act = [&](nn::Activation act) {
    LayerExperiment e;
    e.attention.kind = nn::AttentionKind::kLinear;
    e.attention.feature_map = act;
    return run_layer_profile(e, chip());
  };
  const auto relu = run_act(nn::Activation::kRelu);
  const auto leaky = run_act(nn::Activation::kLeakyRelu);
  const auto gelu = run_act(nn::Activation::kGelu);
  const auto glu = run_act(nn::Activation::kGlu);

  // ReLU / LeakyReLU / GELU within a few percent of each other.
  const double base = relu.summary.makespan.seconds();
  EXPECT_NEAR(leaky.summary.makespan.seconds() / base, 1.0, 0.05);
  EXPECT_NEAR(gelu.summary.makespan.seconds() / base, 1.0, 0.08);

  // GLU is the worst (paper: +8%; simulator overshoots, direction holds).
  EXPECT_GT(glu.summary.makespan.seconds(), 1.05 * base);
  EXPECT_GT(glu.summary.makespan.seconds(),
            gelu.summary.makespan.seconds());

  // ... and it is the only one paying a compilation stall.
  EXPECT_GT(glu.summary.host_busy, sim::SimTime::zero());
  EXPECT_EQ(relu.summary.host_busy, sim::SimTime::zero());
  EXPECT_EQ(gelu.summary.host_busy, sim::SimTime::zero());
}

// ---------------------------------------------------------------------------
// Figures 8-9: end-to-end language models
// ---------------------------------------------------------------------------

TEST(Fig8and9, LlmTrainingStepsShowImbalanceAndGaps) {
  for (const auto arch : {nn::LmArch::kGpt2, nn::LmArch::kBert}) {
    const nn::LmConfig cfg = arch == nn::LmArch::kGpt2 ? nn::LmConfig::gpt2_paper()
                                                       : nn::LmConfig::bert_paper();
    const LlmProfile p =
        run_llm_profile(cfg, graph::SchedulePolicy::kBarrier, chip());
    // Paper: "many blank areas in the MME operating area" and unbalanced
    // MME/TPC workload with no overlap.
    EXPECT_GE(p.summary.mme_gap_count, 10u) << nn::lm_arch_name(arch);
    EXPECT_GT(p.summary.mme_idle_fraction, 0.15) << nn::lm_arch_name(arch);
    EXPECT_GT(p.summary.engine_imbalance, 0.3) << nn::lm_arch_name(arch);
    // Both engines genuinely work (training step touches everything).
    EXPECT_GT(p.summary.tpc_busy.ms(), 10.0);
    EXPECT_GT(p.summary.mme_busy.ms(), 10.0);
    // Paper §3.1/3.4: fits the 32 GB device at batch 8 (that is why the
    // batch is 8).
    EXPECT_LE(p.hbm_peak_bytes, 32ull << 30);
  }
}

TEST(Fig8and9, GptCostsMoreThanBertPerStep) {
  // Same dims, but GPT's vocabulary (50257 vs 30522) makes its LM head —
  // the dominant GEMM — proportionally more expensive.
  const auto gpt = run_llm_profile(nn::LmConfig::gpt2_paper(),
                                   graph::SchedulePolicy::kBarrier, chip());
  const auto bert = run_llm_profile(nn::LmConfig::bert_paper(),
                                    graph::SchedulePolicy::kBarrier, chip());
  EXPECT_GT(gpt.summary.makespan, bert.summary.makespan);
  EXPECT_GT(gpt.param_count, bert.param_count);
}

TEST(Fig8and9, MemoryLimitForcesSmallBatch) {
  // Doubling the batch to 32 at seq 2048 should blow past 32 GB — the
  // paper's stated reason for batch 8.
  nn::LmConfig cfg = nn::LmConfig::gpt2_paper();
  cfg.batch = 32;
  EXPECT_THROW(
      run_llm_profile(cfg, graph::SchedulePolicy::kBarrier, chip()),
      sim::ResourceExhausted);
}

// ---------------------------------------------------------------------------
// Long sequences (§3.3 motivation) and scheduler ablation (§4)
// ---------------------------------------------------------------------------

TEST(LongSequences, SoftmaxDegradesSuperlinearlyAtConstantTokens) {
  auto total_ms = [&](std::int64_t seq) {
    LayerExperiment e;
    e.seq_len = seq;
    e.batch = 128 * 2048 / seq;
    e.attention.kind = nn::AttentionKind::kSoftmax;
    return run_layer_profile(e, chip()).summary.makespan.ms();
  };
  const double t512 = total_ms(512);
  const double t2048 = total_ms(2048);
  // 4x the sequence at constant tokens: O(N^2) terms grow 4x, so the total
  // must grow clearly superlinearly in N... but sublinearly vs pure O(N^2).
  EXPECT_GT(t2048 / t512, 2.0);

  auto linear_ms = [&](std::int64_t seq) {
    LayerExperiment e;
    e.seq_len = seq;
    e.batch = 128 * 2048 / seq;
    e.attention.kind = nn::AttentionKind::kLinear;
    return run_layer_profile(e, chip()).summary.makespan.ms();
  };
  // Linear attention is ~flat at constant token count.
  EXPECT_NEAR(linear_ms(2048) / linear_ms(512), 1.0, 0.25);
}

TEST(Ablation, OverlapSchedulerNeverSlower) {
  for (const auto kind : {nn::AttentionKind::kSoftmax, nn::AttentionKind::kLinear,
                          nn::AttentionKind::kPerformer}) {
    LayerExperiment e;
    e.attention.kind = kind;
    const auto barrier = run_layer_profile(e, chip());
    e.policy = graph::SchedulePolicy::kOverlap;
    const auto overlap = run_layer_profile(e, chip());
    EXPECT_LE(overlap.summary.makespan, barrier.summary.makespan)
        << nn::attention_kind_name(kind);
  }
}

// ---------------------------------------------------------------------------
// Advisor (§4 insights)
// ---------------------------------------------------------------------------

TEST(Advisor, FlagsSoftmaxBottleneckOnFig4) {
  AdvisorInput in;
  in.summary = profiles().softmax.summary;
  const auto findings = advise(in);
  bool softmax_finding = false, matmul_finding = false;
  for (const auto& f : findings) {
    softmax_finding |= f.title.find("Softmax") != std::string::npos;
    matmul_finding |= f.insight == 3;
  }
  EXPECT_TRUE(softmax_finding);
  EXPECT_TRUE(matmul_finding);
  EXPECT_FALSE(format_findings(findings).empty());
}

TEST(Advisor, FlagsRecompileForGlu) {
  LayerExperiment e;
  e.attention.kind = nn::AttentionKind::kLinear;
  e.attention.feature_map = nn::Activation::kGlu;
  AdvisorInput in;
  in.summary = run_layer_profile(e, chip()).summary;
  bool recompile = false;
  for (const auto& f : advise(in)) recompile |= f.insight == 2;
  EXPECT_TRUE(recompile);
}

TEST(Advisor, FlagsMissedOverlapWhenGainIsLarge) {
  AdvisorInput in;
  in.summary = profiles().softmax.summary;
  in.overlap_makespan = sim::SimTime::from_ms(
      profiles().softmax.summary.makespan.ms() * 0.5);
  bool overlap_finding = false;
  for (const auto& f : advise(in)) overlap_finding |= f.insight == 1;
  EXPECT_TRUE(overlap_finding);
}

TEST(Advisor, QuietOnBalancedTrace) {
  TraceSummary s;
  s.makespan = sim::SimTime::from_ms(10.0);
  s.mme_busy = sim::SimTime::from_ms(9.0);
  s.tpc_busy = sim::SimTime::from_ms(8.5);
  s.mme_utilization = 0.9;
  s.mme_idle_fraction = 0.1;
  AdvisorInput in;
  in.summary = s;
  EXPECT_TRUE(advise(in).empty());
}

// ---------------------------------------------------------------------------
// Report plumbing
// ---------------------------------------------------------------------------

TEST(Reports, TextTableRendersAligned) {
  TextTable t({"A", "Bee"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| A   | Bee |"), std::string::npos);
  EXPECT_THROW(t.add_row({"only one"}), sim::InvalidArgument);
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
}

TEST(Reports, DegenerateRatiosRenderAsNa) {
  // Ratios over a zero-duration trace are undefined: every renderer must
  // say "n/a", never "nan"/"inf" (and never cast NaN to int, which is UB).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(TextTable::num(nan), "n/a");
  EXPECT_EQ(TextTable::num(std::numeric_limits<double>::infinity()), "n/a");
  EXPECT_EQ(pct(nan), "n/a");
  EXPECT_EQ(pct(0.425), "43%");

  const graph::Trace empty;
  const TraceSummary s = summarize(empty);
  EXPECT_TRUE(std::isnan(s.mme_utilization));
  EXPECT_TRUE(std::isnan(s.softmax_share_of_tpc));
  EXPECT_TRUE(std::isnan(s.engine_imbalance));
  const std::string report = to_report(s, "empty");
  EXPECT_NE(report.find("n/a util"), std::string::npos);
  EXPECT_EQ(report.find("nan"), std::string::npos);
  EXPECT_EQ(report.find("inf"), std::string::npos);

  // Baselines stay finite (the key=value format round-trips numbers only).
  const Baseline b = baseline_from(s);
  EXPECT_EQ(b.metrics.at("engine_imbalance"), 0.0);
}

TEST(Reports, SummaryReportMentionsKeyMetrics) {
  const std::string report = to_report(profiles().softmax.summary, "Fig 4");
  EXPECT_NE(report.find("Fig 4"), std::string::npos);
  EXPECT_NE(report.find("MME busy"), std::string::npos);
  EXPECT_NE(report.find("softmax / TPC"), std::string::npos);
}

}  // namespace
}  // namespace gaudi::core

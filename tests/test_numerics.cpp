// Numerics sentinel tests: sweep classification, guard policy resolution,
// guarded execution (warn/trap), SDC checksum detection, GradScaler, and the
// inject-NaN fuzz mode over random DAGs.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "graph/random_graph.hpp"
#include "graph/runtime.hpp"
#include "nn/train.hpp"
#include "sim/error.hpp"
#include "sim/fault.hpp"
#include "sim/numerics.hpp"
#include "tensor/ops.hpp"

namespace gaudi {
namespace {

using graph::NumericsAnomaly;
using graph::RunOptions;
using sim::NumericsPolicy;
using sim::NumericsStats;

TEST(NumericsSweep, ClassifiesF32Elements) {
  const float inf = std::numeric_limits<float>::infinity();
  const float denorm = std::numeric_limits<float>::denorm_min();
  const std::vector<float> data = {
      1.0f,
      -3.5f,
      std::numeric_limits<float>::quiet_NaN(),
      inf,
      -inf,
      denorm,
      std::bit_cast<float>(0x7F7F8000u),  // rounds to bf16 +inf
      0.0f,
  };
  const NumericsStats s = sim::sweep_f32(data);
  EXPECT_EQ(s.count, data.size());
  EXPECT_EQ(s.nan_count, 1u);
  EXPECT_EQ(s.inf_count, 2u);
  EXPECT_EQ(s.denormal_count, 1u);
  // Infinities are counted as inf, not as bf16 cast overflow; only the
  // finite boundary value overflows the cast.
  EXPECT_EQ(s.bf16_overflow_count, 1u);
  // NaN never contributes to max_abs; Inf does.
  EXPECT_EQ(s.max_abs, inf);
  EXPECT_TRUE(s.anomalous());

  const std::vector<float> clean = {0.0f, 1.0f, -2.0f};
  const NumericsStats c = sim::sweep_f32(clean);
  EXPECT_FALSE(c.anomalous());
  EXPECT_EQ(c.max_abs, 2.0f);
}

TEST(NumericsSweep, ClassifiesBf16Encodings) {
  const std::vector<std::uint16_t> data = {
      0x3F80,  // 1.0
      0x7FC0,  // quiet NaN
      0x7F80,  // +inf
      0xFF80,  // -inf
      0x0001,  // denormal
      0x0000,  // zero
  };
  const NumericsStats s = sim::sweep_bf16(data);
  EXPECT_EQ(s.count, data.size());
  EXPECT_EQ(s.nan_count, 1u);
  EXPECT_EQ(s.inf_count, 2u);
  EXPECT_EQ(s.denormal_count, 1u);
  EXPECT_TRUE(s.anomalous());
}

TEST(NumericsSweep, MergeAccumulates) {
  NumericsStats a = sim::sweep_f32(std::vector<float>{1.0f, 2.0f});
  const NumericsStats b = sim::sweep_f32(
      std::vector<float>{std::numeric_limits<float>::quiet_NaN(), -8.0f});
  a.merge(b);
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.nan_count, 1u);
  EXPECT_EQ(a.max_abs, 8.0f);
  EXPECT_TRUE(a.anomalous());
}

TEST(NumericsSweep, PoisonFillReadsAsNan) {
  tensor::Tensor t = tensor::Tensor::zeros(tensor::Shape{{7}});
  tensor::ops::poison_fill(t);
  const NumericsStats s = tensor::ops::numerics_sweep(t);
  EXPECT_EQ(s.count, 7u);
  EXPECT_EQ(s.nan_count, 7u);
}

TEST(NumericsSweep, GuardSweepTimeScalesWithBytes) {
  const double bw = 1e12;
  const sim::SimTime small = sim::guard_sweep_time(1024, bw);
  const sim::SimTime large = sim::guard_sweep_time(1024 * 1024, bw);
  EXPECT_LT(sim::SimTime{}, small);
  EXPECT_LT(small, large);
}

TEST(NumericsEnv, GuardPolicyParsing) {
  const auto with_env = [](const char* value) {
    if (value == nullptr) {
      ::unsetenv("GAUDI_GUARD");
    } else {
      ::setenv("GAUDI_GUARD", value, 1);
    }
    const NumericsPolicy p = sim::numerics_policy_from_env();
    ::unsetenv("GAUDI_GUARD");
    return p;
  };
  EXPECT_EQ(with_env(nullptr), NumericsPolicy::kOff);
  EXPECT_EQ(with_env("trap"), NumericsPolicy::kTrap);
  EXPECT_EQ(with_env("TRAP"), NumericsPolicy::kTrap);
  EXPECT_EQ(with_env("warn"), NumericsPolicy::kWarn);
  EXPECT_EQ(with_env("1"), NumericsPolicy::kWarn);   // boolean on => warn
  EXPECT_EQ(with_env("on"), NumericsPolicy::kWarn);
  EXPECT_EQ(with_env("0"), NumericsPolicy::kOff);
  EXPECT_EQ(with_env("off"), NumericsPolicy::kOff);
  EXPECT_EQ(with_env("paranoid"), NumericsPolicy::kOff);  // warns once
}

TEST(GradScaler, BacksOffAndSkipsOnOverflow) {
  nn::GradScalerConfig cfg;
  cfg.init_scale = 1024.0f;
  nn::GradScaler s(cfg);
  EXPECT_TRUE(s.update(false));
  EXPECT_EQ(s.scale(), 1024.0f);
  EXPECT_FALSE(s.update(true));  // overflow: skip + halve
  EXPECT_EQ(s.scale(), 512.0f);
  EXPECT_EQ(s.skipped_steps(), 1);
  EXPECT_EQ(s.clean_streak(), 0);
}

TEST(GradScaler, GrowsOnlyAfterTheFullCleanStreak) {
  nn::GradScalerConfig cfg;
  cfg.init_scale = 256.0f;
  cfg.growth_interval = 4;
  nn::GradScaler s(cfg);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(s.update(false));
    EXPECT_EQ(s.scale(), 256.0f);  // hysteresis: not yet
  }
  EXPECT_TRUE(s.update(false));
  EXPECT_EQ(s.scale(), 512.0f);  // 4th clean step doubles
  // Overflow resets the streak; growth needs another full interval.
  EXPECT_FALSE(s.update(true));
  EXPECT_EQ(s.scale(), 256.0f);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(s.update(false));
  EXPECT_EQ(s.scale(), 256.0f);
}

TEST(GradScaler, ClampsAtMinAndMax) {
  nn::GradScalerConfig cfg;
  cfg.init_scale = 2.0f;
  cfg.min_scale = 1.0f;
  cfg.max_scale = 8.0f;
  cfg.growth_interval = 1;
  nn::GradScaler s(cfg);
  for (int i = 0; i < 10; ++i) (void)s.update(true);
  EXPECT_EQ(s.scale(), 1.0f);
  for (int i = 0; i < 10; ++i) (void)s.update(false);
  EXPECT_EQ(s.scale(), 8.0f);
}

/// Small graph with a div whose denominator feed contains a zero: the
/// quotient originates an Inf the guard must blame on exactly that op.
struct DivGraph {
  graph::Graph g;
  graph::ValueId a, b, q, y;
  std::unordered_map<graph::ValueId, tensor::Tensor> feeds;

  DivGraph() {
    a = g.input(tensor::Shape{{2, 4}}, tensor::DType::F32, "numerator");
    b = g.input(tensor::Shape{{2, 4}}, tensor::DType::F32, "denominator");
    q = g.div(a, b, "quotient");
    y = g.add(q, a, "downstream");
    g.mark_output(y);

    tensor::Tensor av = tensor::Tensor::full(tensor::Shape{{2, 4}}, 1.0f);
    tensor::Tensor bv = tensor::Tensor::full(tensor::Shape{{2, 4}}, 2.0f);
    bv.f32_mut()[3] = 0.0f;  // 1/0 -> +inf
    feeds.emplace(a, std::move(av));
    feeds.emplace(b, std::move(bv));
  }
};

TEST(NumericsGuard, WarnBlamesTheOriginatingOp) {
  DivGraph d;
  graph::Runtime rt;
  RunOptions opts;
  opts.guard = NumericsPolicy::kWarn;
  const graph::ProfileResult r = rt.run(d.g, d.feeds, opts);

  ASSERT_FALSE(r.anomalies.empty());
  const NumericsAnomaly& a = r.anomalies.front();
  EXPECT_EQ(a.kind, NumericsAnomaly::Kind::kNonFinite);
  EXPECT_EQ(a.value, d.q);
  EXPECT_EQ(a.stats.inf_count, 1u);
  EXPECT_NE(a.report.find("quotient"), std::string::npos);
  EXPECT_NE(a.report.find("contamination path"), std::string::npos);
  // The downstream add inherits the Inf and must not re-originate.
  for (const NumericsAnomaly& extra : r.anomalies) {
    EXPECT_NE(extra.value, d.y);
  }
  EXPECT_GE(r.numerics.inf_count, 1u);
  EXPECT_EQ(r.guard_policy, NumericsPolicy::kWarn);
}

TEST(NumericsGuard, TrapThrowsNamingTheFault) {
  DivGraph d;
  graph::Runtime rt;
  RunOptions opts;
  opts.guard = NumericsPolicy::kTrap;
  try {
    (void)rt.run(d.g, d.feeds, opts);
    FAIL() << "trap policy should have thrown";
  } catch (const sim::NumericsError& e) {
    EXPECT_NE(std::string(e.what()).find("quotient"), std::string::npos);
  }
}

TEST(NumericsGuard, OffIsSilentAndLeavesNoResidue) {
  DivGraph d;
  graph::Runtime rt;
  RunOptions opts;
  opts.guard = NumericsPolicy::kOff;
  const graph::ProfileResult r = rt.run(d.g, d.feeds, opts);
  EXPECT_TRUE(r.anomalies.empty());
  EXPECT_EQ(r.numerics.count, 0u);
  for (const graph::TraceEvent& e : r.trace.events()) {
    EXPECT_NE(e.kind, graph::TraceEventKind::kGuard);
    EXPECT_FALSE(e.has_stats);
  }
  // The Inf still flows to the output — off means off, not clamped.
  const NumericsStats s = tensor::ops::numerics_sweep(r.outputs.at(d.y));
  EXPECT_EQ(s.inf_count, 1u);
}

TEST(NumericsGuard, GuardDoesNotPerturbResults) {
  const graph::RandomDag dag = graph::random_dag(42);
  const auto feeds = graph::random_feeds(dag.graph, 42);
  graph::Runtime rt;

  RunOptions off;
  off.guard = NumericsPolicy::kOff;
  RunOptions warn;
  warn.guard = NumericsPolicy::kWarn;
  const graph::ProfileResult r_off = rt.run(dag.graph, feeds, off);
  const graph::ProfileResult r_warn = rt.run(dag.graph, feeds, warn);

  ASSERT_EQ(r_off.outputs.size(), r_warn.outputs.size());
  for (const auto& [v, t] : r_off.outputs) {
    const tensor::Tensor& w = r_warn.outputs.at(v);
    ASSERT_EQ(t.numel(), w.numel());
    if (t.dtype() != tensor::DType::F32) continue;
    const auto ts = t.f32();
    const auto ws = w.f32();
    for (std::size_t i = 0; i < ts.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(ts[i]),
                std::bit_cast<std::uint32_t>(ws[i]));
    }
  }
  // Repeated guard-off runs are byte-identical (trace included).
  const graph::ProfileResult r_off2 = rt.run(dag.graph, feeds, off);
  EXPECT_EQ(r_off.trace.to_chrome_json(), r_off2.trace.to_chrome_json());
}

TEST(NumericsGuard, TimingTraceCarriesGuardSpansAndValidates) {
  const graph::RandomDag dag = graph::random_dag(7);
  graph::Runtime rt;
  RunOptions opts;
  opts.mode = tpc::ExecMode::kTiming;
  opts.guard = NumericsPolicy::kWarn;
  opts.validate = true;  // validator enforces the guard-span invariants
  const graph::ProfileResult guarded = rt.run(dag.graph, {}, opts);

  std::size_t guard_events = 0;
  for (const graph::TraceEvent& e : guarded.trace.events()) {
    if (e.kind == graph::TraceEventKind::kGuard) {
      ++guard_events;
      EXPECT_TRUE(e.has_stats);
      EXPECT_NE(e.name.find(".guard"), std::string::npos);
    } else {
      EXPECT_FALSE(e.has_stats);
    }
  }
  EXPECT_GT(guard_events, 0u);
  EXPECT_GT(guarded.numerics.count, 0u);  // coverage reported in timing mode

  opts.guard = NumericsPolicy::kOff;
  const graph::ProfileResult plain = rt.run(dag.graph, {}, opts);
  for (const graph::TraceEvent& e : plain.trace.events()) {
    EXPECT_NE(e.kind, graph::TraceEventKind::kGuard);
  }
  EXPECT_LT(plain.makespan, guarded.makespan);  // the sweep costs time
}

TEST(NumericsGuard, ChecksumCatchesInjectedCorruption) {
  graph::Graph g;
  const graph::ValueId a =
      g.input(tensor::Shape{{4, 4}}, tensor::DType::F32, "a");
  const graph::ValueId s1 = g.mul(a, a, "sq");
  const graph::ValueId s2 = g.add(s1, a, "sum");
  g.mark_output(s2);
  std::unordered_map<graph::ValueId, tensor::Tensor> feeds;
  feeds.emplace(a, tensor::Tensor::full(tensor::Shape{{4, 4}}, 0.5f));

  graph::Runtime rt;
  RunOptions opts;
  opts.guard = NumericsPolicy::kWarn;
  opts.corrupt_value = s1;
  const graph::ProfileResult r = rt.run(g, feeds, opts);

  ASSERT_FALSE(r.anomalies.empty());
  const NumericsAnomaly& anom = r.anomalies.front();
  EXPECT_EQ(anom.kind, NumericsAnomaly::Kind::kSdc);
  EXPECT_EQ(anom.value, s1);
  EXPECT_NE(anom.report.find("checksum"), std::string::npos);
  EXPECT_NE(anom.report.find("sq"), std::string::npos);

  // Unguarded, the same corruption sails straight into the output.
  opts.guard = NumericsPolicy::kOff;
  const graph::ProfileResult silent = rt.run(g, feeds, opts);
  EXPECT_TRUE(silent.anomalies.empty());
  const NumericsStats out = tensor::ops::numerics_sweep(silent.outputs.at(s2));
  EXPECT_GT(out.nan_count, 0u);
}

TEST(NumericsGuard, FaultInjectorBitFlipsAreCaught) {
  sim::FaultProfile profile;
  profile.sdc_bit_flip_rate = 0.25;
  const sim::FaultInjector faults{0xBEEF, profile};

  const graph::RandomDag dag = graph::random_dag(5);
  const auto feeds = graph::random_feeds(dag.graph, 5);
  graph::Runtime rt;
  RunOptions opts;
  opts.guard = NumericsPolicy::kWarn;
  opts.faults = &faults;
  const graph::ProfileResult r = rt.run(dag.graph, feeds, opts);
  ASSERT_FALSE(r.sdc_injections.empty());
  for (const graph::SdcInjection& inj : r.sdc_injections) {
    EXPECT_NE(inj.value, graph::kInvalidValue);
    EXPECT_GE(inj.node, 0);
  }
  // Injection is independent of detection: the unguarded run records the
  // same flips but reports nothing.
  RunOptions off = opts;
  off.guard = NumericsPolicy::kOff;
  const graph::ProfileResult silent = rt.run(dag.graph, feeds, off);
  EXPECT_EQ(silent.sdc_injections.size(), r.sdc_injections.size());
  EXPECT_TRUE(silent.anomalies.empty());
}

TEST(TrainLoop, LossScalingRescuesACorruptedGradient) {
  nn::TrainOptions opts;
  opts.steps = 3;
  opts.corrupt_grad_step = 1;

  opts.loss_scaling = false;
  const nn::TrainResult bare = nn::train_language_model(opts);
  EXPECT_FALSE(bare.finite);

  opts.loss_scaling = true;
  const nn::TrainResult scaled = nn::train_language_model(opts);
  EXPECT_TRUE(scaled.finite);
  EXPECT_EQ(scaled.skipped_steps, 1);
  ASSERT_EQ(scaled.steps.size(), 3u);
  EXPECT_FALSE(scaled.steps[1].applied);
  EXPECT_GT(scaled.steps[1].grad_stats.nan_count, 0u);
  EXPECT_EQ(scaled.final_scale, opts.scaler.init_scale * 0.5f);
}

// Satellite: inject-NaN fuzz mode.  Corrupt a random produced value in a
// random DAG; the guarded run must blame exactly that value first, every
// reported anomaly must sit inside its contamination cone (no false
// positives), and an unguarded run must stay silent.
TEST(NumericsFuzz, BlameAlwaysLandsInsideTheContaminationCone) {
  graph::Runtime rt;
  int corrupted_runs = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    const graph::RandomDag dag = graph::random_dag(seed);
    const graph::ValueId target =
        graph::pick_corruption_target(dag.graph, seed);
    if (target == graph::kInvalidValue) continue;
    const auto feeds = graph::random_feeds(dag.graph, seed);

    RunOptions guarded;
    guarded.guard = NumericsPolicy::kWarn;
    // Skip seeds that are organically anomalous even without corruption.
    if (!rt.run(dag.graph, feeds, guarded).anomalies.empty()) continue;

    RunOptions corrupted = guarded;
    corrupted.corrupt_value = target;
    const graph::ProfileResult r = rt.run(dag.graph, feeds, corrupted);
    ASSERT_FALSE(r.anomalies.empty()) << "seed " << seed << ": missed";
    EXPECT_EQ(r.anomalies.front().kind, NumericsAnomaly::Kind::kSdc)
        << "seed " << seed;
    EXPECT_EQ(r.anomalies.front().value, target) << "seed " << seed;

    const std::vector<graph::ValueId> cone =
        graph::contamination_cone(dag.graph, target);
    EXPECT_TRUE(std::binary_search(cone.begin(), cone.end(), target));
    for (const NumericsAnomaly& a : r.anomalies) {
      EXPECT_TRUE(std::binary_search(cone.begin(), cone.end(), a.value))
          << "seed " << seed << ": anomaly blames value " << a.value
          << " outside the contamination cone of " << target;
    }

    RunOptions off = corrupted;
    off.guard = NumericsPolicy::kOff;
    EXPECT_TRUE(rt.run(dag.graph, feeds, off).anomalies.empty())
        << "seed " << seed;
    ++corrupted_runs;
  }
  EXPECT_GE(corrupted_runs, 15) << "fuzz corpus too thin to mean anything";
}

}  // namespace
}  // namespace gaudi

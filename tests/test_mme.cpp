// MME model tests: functional GEMM correctness (incl. descriptor
// transposes), cost-model laws, and the Table 2 calibration envelope.
#include <gtest/gtest.h>

#include "mme/mme.hpp"
#include "sim/chip_config.hpp"
#include "tensor/ops.hpp"

namespace gaudi::mme {
namespace {

namespace ops = gaudi::tensor::ops;
using tensor::Shape;
using tensor::Tensor;

MmeEngine engine() { return MmeEngine(sim::ChipConfig::hls1().mme); }

TEST(MmeShapeOf, DerivesAndValidates) {
  const GemmShape s =
      MmeEngine::shape_of(Shape{{4, 8, 16}}, Shape{{4, 16, 32}}, false, false);
  EXPECT_EQ(s.batch, 4);
  EXPECT_EQ(s.m, 8);
  EXPECT_EQ(s.k, 16);
  EXPECT_EQ(s.n, 32);
  EXPECT_EQ(s.flops(), 2ull * 4 * 8 * 16 * 32);

  // Transposes swap the interpreted dims.
  const GemmShape t =
      MmeEngine::shape_of(Shape{{16, 8}}, Shape{{32, 16}}, true, true);
  EXPECT_EQ(t.m, 8);
  EXPECT_EQ(t.k, 16);
  EXPECT_EQ(t.n, 32);

  EXPECT_THROW(MmeEngine::shape_of(Shape{{2, 3}}, Shape{{4, 5}}, false, false),
               sim::InvalidArgument);
  EXPECT_THROW(
      MmeEngine::shape_of(Shape{{2, 3, 4}}, Shape{{3, 4, 5}}, false, false),
      sim::InvalidArgument);
}

TEST(MmeExecute, MatchesReferenceWithAllTransposeCombinations) {
  const sim::CounterRng rng(61);
  const Tensor a = Tensor::uniform(Shape{{6, 10}}, rng.stream(1), -1.0f, 1.0f);
  const Tensor b = Tensor::uniform(Shape{{10, 4}}, rng.stream(2), -1.0f, 1.0f);
  const MmeEngine mme = engine();

  const Tensor base = ops::matmul(a, b);
  EXPECT_LT(ops::max_abs_diff(mme.execute(a, b), base), 1e-5);
  EXPECT_LT(
      ops::max_abs_diff(mme.execute(ops::transpose_last2(a), b, true, false), base),
      1e-5);
  EXPECT_LT(
      ops::max_abs_diff(mme.execute(a, ops::transpose_last2(b), false, true), base),
      1e-5);
  EXPECT_LT(ops::max_abs_diff(mme.execute(ops::transpose_last2(a),
                                          ops::transpose_last2(b), true, true),
                              base),
            1e-5);
}

TEST(MmeExecute, RejectsPhantomTensors) {
  const Tensor a = Tensor::phantom(Shape{{4, 4}});
  const Tensor b = Tensor::phantom(Shape{{4, 4}});
  EXPECT_THROW(engine().execute(a, b), sim::InvalidArgument);
}

TEST(MmeCost, MonotoneInEveryDimension) {
  const MmeEngine mme = engine();
  const GemmShape base{2, 256, 256, 256};
  const auto t0 = mme.cost(base).cycles;
  for (GemmShape s : {GemmShape{4, 256, 256, 256}, GemmShape{2, 512, 256, 256},
                      GemmShape{2, 256, 512, 256}, GemmShape{2, 256, 256, 512}}) {
    EXPECT_GT(mme.cost(s).cycles, t0);
  }
  EXPECT_THROW(mme.cost(GemmShape{0, 1, 1, 1}), sim::InvalidArgument);
}

TEST(MmeCost, ThroughputBoundedByPeak) {
  const MmeEngine mme = engine();
  const double peak = sim::ChipConfig::hls1().mme.peak_flops() * 1e-12;
  for (const std::int64_t s : {128, 512, 2048, 8192}) {
    const double tflops = mme.cost(GemmShape{1, s, s, s}).tflops();
    EXPECT_LE(tflops, peak * 1.001) << s;
  }
  // Large GEMMs approach peak.
  EXPECT_GT(mme.cost(GemmShape{1, 8192, 8192, 8192}).tflops(), 0.97 * peak);
}

TEST(MmeCost, SmallSizesAreOverheadBound) {
  const MmeEngine mme = engine();
  // The Table 2 droop: a size-128 batch-64 op runs far below peak.
  const double small = mme.cost(GemmShape{64, 128, 128, 128}).tflops();
  const double large = mme.cost(GemmShape{64, 2048, 2048, 2048}).tflops();
  EXPECT_LT(small, 0.25 * large);
  EXPECT_NEAR(small, 2.3, 0.4);   // paper: 2.35 TFLOPS
  EXPECT_NEAR(large, 14.6, 0.3);  // paper: 14.59 TFLOPS
}

TEST(MmeCost, NarrowOutputsPackTheArray) {
  const MmeEngine mme = engine();
  const auto launch = sim::ChipConfig::hls1().mme.launch_overhead_cycles;
  // n = 64 uses half the array columns: the compute part should cost about
  // half of n = 128 for the same m/k (well above the quarter-array floor).
  const auto full = mme.cost(GemmShape{1, 16384, 128, 2048}).cycles - launch;
  const auto half = mme.cost(GemmShape{1, 16384, 64, 2048}).cycles - launch;
  const double ratio = static_cast<double>(half) / static_cast<double>(full);
  EXPECT_NEAR(ratio, 0.5, 0.05);
  // The packing floor: n = 1 still costs at least a quarter tile.
  const auto tiny = mme.cost(GemmShape{1, 16384, 1, 2048}).cycles - launch;
  EXPECT_NEAR(static_cast<double>(tiny) / static_cast<double>(full), 0.25, 0.05);
}

TEST(MmeCost, BatchStreamsWithoutExtraLaunches) {
  const MmeEngine mme = engine();
  // One batch-8 op is much cheaper than 8 separate ops (one launch overhead
  // instead of eight).
  const auto batched = mme.cost(GemmShape{8, 128, 128, 128}).cycles;
  const auto single = mme.cost(GemmShape{1, 128, 128, 128}).cycles;
  EXPECT_LT(batched, 8 * single);
  EXPECT_GT(batched, single);
}

}  // namespace
}  // namespace gaudi::mme
